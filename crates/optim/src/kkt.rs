//! Implicit differentiation of the relaxed matching optimum through its
//! KKT stationarity system (paper §3.3, Eq. 13–15) — the MFCP-AD path.
//!
//! At the relaxed optimum returned by Algorithm 1 the iterate is strictly
//! interior (the entropy term keeps every `x_ij > 0`), so the only active
//! constraints are the per-task simplex equalities `Σ_i x_ij = 1`.
//! Stationarity then reads
//!
//! ```text
//! ∇_X F(X*, T, A) + Dᵀ ν = 0,      D X* = 1
//! ```
//!
//! and total differentiation gives the symmetric saddle system
//!
//! ```text
//! [ H   Dᵀ ] [ dX ]     [ ∇²_XT F · dT + ∇²_XA F · dA ]
//! [ D   0  ] [ dν ]  = −[ 0                            ]
//! ```
//!
//! (the specialization of the paper's Eq. 15 to inactive box constraints:
//! with `0 < x < 1` strictly, complementary slackness forces `μ¹ = μ² = 0`
//! and those rows drop out). For training we never materialize `dX/dT`;
//! we solve the *adjoint* system once per backward pass:
//! `K [y; z] = [∂L/∂X; 0]`, then contract `∂L/∂T = −(∇²_XT F)ᵀ y` and
//! `∂L/∂A = −(∇²_XA F)ᵀ y`, both available in closed form.
//!
//! Only the convex (sequential-execution) case is supported — exactly the
//! regime where the paper applies MFCP-AD; the parallel case goes through
//! [`crate::zeroth`].

use crate::objective::{self, BarrierKind, ClusterStats, CostKind, RelaxationParams};
use crate::problem::MatchingProblem;
use mfcp_linalg::{cholesky::Cholesky, lu::Lu, vector, LinalgError, Matrix};
use std::sync::OnceLock;

/// Gradients of a scalar loss with respect to the problem's performance
/// matrices, obtained by implicit differentiation.
#[derive(Debug, Clone)]
pub struct KktGradients {
    /// `∂L/∂T`, shape `M x N`.
    pub dl_dt: Matrix,
    /// `∂L/∂A`, shape `M x N`.
    pub dl_da: Matrix,
}

/// Second derivative `φ''(g)` of the barrier.
fn barrier_second_derivative(params: &RelaxationParams, g: f64) -> f64 {
    match params.barrier {
        BarrierKind::Log { eps } => {
            if g >= eps {
                params.lambda / (g * g)
            } else {
                0.0
            }
        }
        BarrierKind::HardPenalty | BarrierKind::None => 0.0,
    }
}

/// Tikhonov damping applied to the primal diagonal of the KKT matrix.
///
/// Computed from cheap structural bounds on the largest Hessian entry —
/// never from the assembled matrix — so the dense and structured paths
/// apply bitwise-identical damping and their solutions agree to solver
/// precision.
fn structural_damping(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    x: &Matrix,
    beta: f64,
    w: &[f64],
    ddphi: f64,
    cap_ddphi: &[f64],
) -> f64 {
    let (m, n) = x.shape();
    let nf = n as f64;
    let mut bound: f64 = 0.0;
    if beta != 0.0 {
        let tmax = problem.times.max_abs();
        let wmax = w.iter().copied().fold(0.0, f64::max);
        bound += beta * tmax * tmax * wmax;
    }
    if ddphi != 0.0 && n > 0 {
        let amax = problem.reliability.max_abs();
        bound += ddphi * amax * amax / (nf * nf);
    }
    if params.rho != 0.0 {
        let xmin = x
            .as_slice()
            .iter()
            .fold(f64::INFINITY, |acc, &v| acc.min(v.max(1e-7)));
        if xmin.is_finite() {
            bound += params.rho / xmin;
        }
    }
    if let Some(cap) = &problem.capacity {
        let mut cap_bound: f64 = 0.0;
        for i in 0..m {
            let dd = cap_ddphi.get(i).copied().unwrap_or(0.0);
            if dd != 0.0 {
                let umax = vector::norm_inf(cap.usage.row(i));
                cap_bound = cap_bound.max(dd * umax * umax / (cap.limits[i] * cap.limits[i]));
            }
        }
        bound += cap_bound;
    }
    // The D blocks contribute entries of exactly 1.0, hence the floor.
    1e-10 * (1.0 + bound.max(1.0))
}

/// Assembles the symmetric KKT saddle matrix `[[H, Dᵀ], [D, 0]]` at `x`,
/// where `H = ∇²_XX F` (smooth-max + barrier + entropy terms, plus mild
/// Tikhonov damping) and `D` stacks the per-task simplex equalities.
///
/// This is the *dense* reference path; [`KktWorkspace`] factors the same
/// system via structured block elimination and falls back to this
/// assembly when the structure is unusable.
pub fn assemble_kkt_matrix(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    x: &Matrix,
) -> Matrix {
    let mut k = Matrix::zeros(0, 0);
    assemble_kkt_matrix_into(problem, params, x, &mut k);
    k
}

/// [`assemble_kkt_matrix`] into a caller-owned buffer, reallocating only
/// when the dimension changes.
pub(crate) fn assemble_kkt_matrix_into(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    x: &Matrix,
    k: &mut Matrix,
) {
    let (m, n) = x.shape();
    let mn = m * n;
    let dim = mn + n;
    let stats = objective::cluster_stats(problem, params, x);
    let g = objective::reliability_slack(problem, x);
    let ddphi = barrier_second_derivative(params, g);
    let (beta, w): (f64, Vec<f64>) = match params.cost {
        CostKind::SmoothMax => (params.beta, stats.weights.clone()),
        CostKind::LinearSum => (0.0, vec![1.0; m]),
    };
    let t = &problem.times;
    let a = &problem.reliability;
    let nf = n as f64;
    let idx = |i: usize, j: usize| i * n + j;
    if k.shape() != (dim, dim) {
        *k = Matrix::zeros(dim, dim);
    } else {
        k.as_mut_slice().fill(0.0);
    }

    // H1 (smooth max): β t_ij t_kl (δ_ik w_i − w_i w_k)
    // H2 (barrier):    φ''(g) a_ij a_kl / N²
    // H3 (entropy):    ρ / x_ij on the diagonal
    // H4 (capacity):   per-cluster rank-1 blocks
    //                  φ''(slack_i) u_ij u_il / limit_i²
    let capacity = problem.capacity.as_ref().map(|cap| {
        let cap_ddphi: Vec<f64> = (0..m)
            .map(|i| barrier_second_derivative(params, cap.slack(x, i)))
            .collect();
        (cap, cap_ddphi)
    });
    for i in 0..m {
        for j in 0..n {
            let row = idx(i, j);
            for kk in 0..m {
                for l in 0..n {
                    let col = idx(kk, l);
                    let mut h =
                        beta * t[(i, j)] * t[(kk, l)] * w[i] * ((i == kk) as u8 as f64 - w[kk]);
                    h += ddphi * a[(i, j)] * a[(kk, l)] / (nf * nf);
                    if i == kk {
                        if let Some((cap, cap_ddphi)) = &capacity {
                            if cap_ddphi[i] != 0.0 {
                                h += cap_ddphi[i] * cap.usage[(i, j)] * cap.usage[(i, l)]
                                    / (cap.limits[i] * cap.limits[i]);
                            }
                        }
                    }
                    k[(row, col)] += h;
                }
            }
            if params.rho != 0.0 {
                // Floor the entry so a fully collapsed coordinate cannot
                // blow the diagonal up to the point of swamping every
                // other pivot of the LU factorization.
                k[(row, row)] += params.rho / x[(i, j)].max(1e-7);
            }
        }
    }
    // Mild Tikhonov damping for numerical safety on near-singular systems.
    let cap_ddphi_slice = capacity.as_ref().map(|(_, v)| v.as_slice()).unwrap_or(&[]);
    let damping = structural_damping(problem, params, x, beta, &w, ddphi, cap_ddphi_slice);
    for d in 0..mn {
        k[(d, d)] += damping;
    }
    // D blocks: equality constraint j touches x_{i j} for all i.
    for j in 0..n {
        for i in 0..m {
            k[(idx(i, j), mn + j)] = 1.0; // Dᵀ
            k[(mn + j, idx(i, j))] = 1.0; // D
        }
    }
}

/// Which factorization a [`KktWorkspace`] currently holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KktMode {
    /// No successful factorization yet.
    Empty,
    /// Structured block elimination (Woodbury + Schur complement).
    Structured,
    /// Dense LU of the assembled saddle matrix.
    Dense,
}

/// Applies `H⁻¹ = Σ⁻¹ − W Cap⁻¹ Wᵀ` (Woodbury, `W = Σ⁻¹U`) to `src`,
/// writing into `dst`. `sr`/`qr` are rank-sized scratch vectors.
#[allow(clippy::too_many_arguments)]
fn apply_h_inv(
    sigma_inv: &[f64],
    ut: &Matrix,
    wt: &Matrix,
    rank: usize,
    cap_lu: &Lu,
    src: &[f64],
    dst: &mut [f64],
    sr: &mut Vec<f64>,
    qr: &mut Vec<f64>,
) -> Result<(), LinalgError> {
    for (d, (&s, &v)) in dst.iter_mut().zip(sigma_inv.iter().zip(src)) {
        *d = s * v;
    }
    if rank == 0 {
        return Ok(());
    }
    sr.clear();
    for k in 0..rank {
        sr.push(vector::dot(ut.row(k), dst));
    }
    cap_lu.solve_into(sr, qr)?;
    for (k, &q) in qr.iter().enumerate().take(rank) {
        let wrow = wt.row(k);
        for (d, &wv) in dst.iter_mut().zip(wrow) {
            *d -= q * wv;
        }
    }
    Ok(())
}

/// Reusable factorization and scratch storage for the KKT saddle systems.
///
/// The Hessian of the relaxed objective is **diagonal plus rank-≤(2M+2)**
/// by construction: `H = Σ + U C Uᵀ`, where `Σ` collects the elementwise
/// entropy/damping terms and the columns of `U` are the per-cluster time
/// vectors (smooth-max curvature `β·Cov_w`), the flattened reliability
/// matrix (barrier curvature `φ''·aaᵀ/N²`), and the per-cluster capacity
/// usage vectors. [`KktWorkspace::factor`] exploits this: it applies
/// `H⁻¹` via the Woodbury identity (one rank×rank LU) and eliminates the
/// simplex rows through the Schur complement `S = D H⁻¹ Dᵀ` (N×N SPD,
/// Cholesky), dropping the solve from `O((MN)³)` to
/// `O(N³ + M³ + M²·MN)`. When the structure is unusable (no entropy term
/// so `Σ` is damping-only, a near-active log barrier whose curvature
/// coefficient `λ/g²` ill-scales the capacitance system, or a downstream
/// factorization failure) it falls back to the dense LU path
/// automatically and counts the event.
///
/// All buffers are reused across calls, so holding one workspace per
/// thread makes repeated backward passes allocation-free after warm-up.
#[derive(Debug, Clone)]
pub struct KktWorkspace {
    mode: KktMode,
    m: usize,
    n: usize,
    // Coefficients at the factored point.
    stats: ClusterStats,
    w_buf: Vec<f64>,
    cap_ddphi: Vec<f64>,
    beta: f64,
    dphi: f64,
    ddphi: f64,
    // Structured factor: H = Σ + U C Uᵀ, S = D H⁻¹ Dᵀ.
    sigma_inv: Vec<f64>,
    rank: usize,
    /// Columns of `U`, stored row-major transposed (`rank × MN`).
    ut: Matrix,
    /// `W = Σ⁻¹ U`, same layout as `ut`.
    wt: Matrix,
    /// Diagonal of `C`.
    coeff: Vec<f64>,
    /// Capacitance `C⁻¹ + Uᵀ Σ⁻¹ U` (indefinite: the −β entry), LU-solved.
    cap_mat: Matrix,
    cap_lu: Lu,
    d_diag: Vec<f64>,
    /// `G = D W` (`N × rank`).
    g_mat: Matrix,
    /// `Q = Cap⁻¹ Gᵀ` (`rank × N`, dense-Schur path only).
    q_mat: Matrix,
    s_mat: Matrix,
    schur: Cholesky,
    /// Opt-in sharded Schur path: when `> 0`, the N×N Schur complement is
    /// never assembled — `S⁻¹` is applied through a second-level Woodbury
    /// identity against the shared rank-≤(2M+2) capacitance, with the
    /// O(N) reductions computed per contiguous task shard and combined in
    /// ascending shard order (deterministic for any shard count).
    schur_shards: usize,
    /// Whether the current structured factorization took the sharded path.
    schur_sharded: bool,
    /// Second-level capacitance `Cap₂ = Cap − Gᵀ D⁻¹ G` (`rank × rank`).
    cap2_mat: Matrix,
    cap2_lu: Lu,
    /// Per-shard partial reductions (`shards × rank²` at factor time,
    /// `shards × rank` at solve time).
    shard_red: Vec<f64>,
    /// `Gᵀ D⁻¹ r` reduction target at solve time.
    sh_u: Vec<f64>,
    // Dense fallback.
    k_dense: Matrix,
    dense_lu: Lu,
    // Solve scratch.
    t1: Vec<f64>,
    t2: Vec<f64>,
    sr: Vec<f64>,
    qr: Vec<f64>,
    zn: Vec<f64>,
    rhs: Vec<f64>,
    sol: Vec<f64>,
    refine_x: Vec<f64>,
    refine_r: Vec<f64>,
    // Telemetry (also mirrored to the `kkt.structured` /
    // `kkt.dense_fallback` observability counters).
    structured_factors: u64,
    dense_fallbacks: u64,
}

impl Default for KktWorkspace {
    fn default() -> Self {
        KktWorkspace {
            mode: KktMode::Empty,
            m: 0,
            n: 0,
            stats: ClusterStats::default(),
            w_buf: Vec::new(),
            cap_ddphi: Vec::new(),
            beta: 0.0,
            dphi: 0.0,
            ddphi: 0.0,
            sigma_inv: Vec::new(),
            rank: 0,
            ut: Matrix::zeros(0, 0),
            wt: Matrix::zeros(0, 0),
            coeff: Vec::new(),
            cap_mat: Matrix::zeros(0, 0),
            cap_lu: Lu::empty(),
            d_diag: Vec::new(),
            g_mat: Matrix::zeros(0, 0),
            q_mat: Matrix::zeros(0, 0),
            s_mat: Matrix::zeros(0, 0),
            schur: Cholesky::empty(),
            schur_shards: 0,
            schur_sharded: false,
            cap2_mat: Matrix::zeros(0, 0),
            cap2_lu: Lu::empty(),
            shard_red: Vec::new(),
            sh_u: Vec::new(),
            k_dense: Matrix::zeros(0, 0),
            dense_lu: Lu::empty(),
            t1: Vec::new(),
            t2: Vec::new(),
            sr: Vec::new(),
            qr: Vec::new(),
            zn: Vec::new(),
            rhs: Vec::new(),
            sol: Vec::new(),
            refine_x: Vec::new(),
            refine_r: Vec::new(),
            structured_factors: 0,
            dense_fallbacks: 0,
        }
    }
}

impl KktWorkspace {
    /// A fresh workspace holding no factorization.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of structured factorizations performed by this workspace.
    pub fn structured_factors(&self) -> u64 {
        self.structured_factors
    }

    /// Number of dense-LU fallbacks taken by this workspace.
    pub fn dense_fallbacks(&self) -> u64 {
        self.dense_fallbacks
    }

    /// Whether the most recent successful factorization was structured.
    pub fn last_factor_structured(&self) -> bool {
        self.mode == KktMode::Structured
    }

    /// Enables (`shards > 0`) or disables (`shards == 0`) the sharded
    /// Schur path. When enabled, structured factorizations skip the N×N
    /// Schur assembly and Cholesky entirely: `S⁻¹` is applied through the
    /// second-level Woodbury identity
    /// `S⁻¹ = D⁻¹ + D⁻¹ G Cap₂⁻¹ Gᵀ D⁻¹` with
    /// `Cap₂ = Cap − Gᵀ D⁻¹ G` (rank ≤ 2M+2), dropping the Schur cost
    /// from `O(N³ + N²·rank)` to `O(N·rank²)`. The solve is exact (and
    /// polished by the same iterative-refinement step as every other
    /// path); a singular `Cap₂` falls back to the dense Schur assembly
    /// and is counted on `optim.sharded.kkt_fallback`.
    pub fn set_schur_shards(&mut self, shards: usize) {
        self.schur_shards = shards;
    }

    /// The configured sharded-Schur shard count (0 = disabled).
    pub fn schur_shards(&self) -> usize {
        self.schur_shards
    }

    /// Whether the most recent structured factorization used the sharded
    /// Schur path (as opposed to the assembled N×N Schur complement).
    pub fn last_schur_sharded(&self) -> bool {
        self.mode == KktMode::Structured && self.schur_sharded
    }

    /// Dense-fallback guard: the structured elimination needs an SPD
    /// diagonal `Σ` (entropy present) and a barrier curvature that does
    /// not swamp it — approaching the active log barrier, `φ'' = λ/g²`
    /// blows up and the capacitance system becomes too ill-scaled.
    fn structured_applicable(&self, params: &RelaxationParams, g: f64) -> bool {
        if params.rho <= 0.0 || params.rho.is_nan() {
            return false;
        }
        if let BarrierKind::Log { eps } = params.barrier {
            if g >= eps && g < 2.0 * eps {
                return false;
            }
        }
        true
    }

    /// Factors the KKT saddle system at `x`, preferring the structured
    /// elimination and falling back to dense LU when necessary.
    ///
    /// # Errors
    /// Returns an error only when the dense fallback itself fails (e.g. a
    /// singular system at a vertex solution with `rho = 0`).
    pub fn factor(
        &mut self,
        problem: &MatchingProblem,
        params: &RelaxationParams,
        x: &Matrix,
    ) -> Result<(), LinalgError> {
        let (m, n) = x.shape();
        debug_assert_eq!(problem.times.shape(), (m, n));
        self.m = m;
        self.n = n;
        self.mode = KktMode::Empty;
        let mn = m * n;

        objective::cluster_stats_into(problem, params, x, &mut self.stats);
        let g = objective::reliability_slack(problem, x);
        self.dphi = objective::barrier_derivative(params, g);
        self.ddphi = barrier_second_derivative(params, g);
        self.beta = match params.cost {
            CostKind::SmoothMax => params.beta,
            CostKind::LinearSum => 0.0,
        };
        self.w_buf.clear();
        match params.cost {
            CostKind::SmoothMax => self.w_buf.extend_from_slice(&self.stats.weights),
            CostKind::LinearSum => self.w_buf.resize(m, 1.0),
        }
        self.cap_ddphi.clear();
        if let Some(cap) = &problem.capacity {
            self.cap_ddphi
                .extend((0..m).map(|i| barrier_second_derivative(params, cap.slack(x, i))));
        }
        let damping = structural_damping(
            problem,
            params,
            x,
            self.beta,
            &self.w_buf,
            self.ddphi,
            &self.cap_ddphi,
        );

        if mn > 0
            && self.structured_applicable(params, g)
            && self.factor_structured(problem, params, x, damping).is_ok()
        {
            self.mode = KktMode::Structured;
            self.structured_factors += 1;
            mfcp_obs::counter("kkt.structured").inc();
            if mfcp_obs::trace::recording() {
                static STRUCTURED: OnceLock<u32> = OnceLock::new();
                let id = *STRUCTURED.get_or_init(|| mfcp_obs::trace::intern("kkt.structured"));
                mfcp_obs::trace::instant_id(id, None);
            }
            return Ok(());
        }

        self.factor_dense(problem, params, x)?;
        self.mode = KktMode::Dense;
        self.dense_fallbacks += 1;
        mfcp_obs::counter("kkt.dense_fallback").inc();
        if mfcp_obs::trace::recording() {
            static DENSE: OnceLock<u32> = OnceLock::new();
            let id = *DENSE.get_or_init(|| mfcp_obs::trace::intern("kkt.dense_fallback"));
            mfcp_obs::trace::instant_id(id, None);
        }
        Ok(())
    }

    fn factor_structured(
        &mut self,
        problem: &MatchingProblem,
        params: &RelaxationParams,
        x: &Matrix,
        damping: f64,
    ) -> Result<(), LinalgError> {
        let (m, n) = (self.m, self.n);
        let mn = m * n;
        let nf = n as f64;
        let t = &problem.times;
        let a = &problem.reliability;

        // Σ⁻¹: entropy + damping diagonal (floored like the dense path).
        self.sigma_inv.clear();
        self.sigma_inv.reserve(mn);
        for i in 0..m {
            for j in 0..n {
                let sigma = damping + params.rho / x[(i, j)].max(1e-7);
                if !(sigma.is_finite() && sigma > 0.0) {
                    return Err(LinalgError::NotPositiveDefinite { pivot: i * n + j });
                }
                self.sigma_inv.push(1.0 / sigma);
            }
        }

        // Enumerate the low-rank columns of U (C's diagonal in `coeff`).
        let smoothmax = self.beta != 0.0;
        let barrier_col = self.ddphi != 0.0 && n > 0;
        let ncap = self.cap_ddphi.iter().filter(|&&v| v != 0.0).count();
        let rank = if smoothmax { m + 1 } else { 0 } + usize::from(barrier_col) + ncap;
        self.rank = rank;
        if self.ut.shape() != (rank, mn) {
            self.ut = Matrix::zeros(rank, mn);
            self.wt = Matrix::zeros(rank, mn);
        } else {
            self.ut.as_mut_slice().fill(0.0);
        }
        self.coeff.clear();
        let mut row = 0;
        if smoothmax {
            // Per-cluster columns e_i ⊗ t_i with coefficient β·w_i …
            for i in 0..m {
                let dst = self.ut.row_mut(row);
                dst[i * n..(i + 1) * n].copy_from_slice(t.row(i));
                self.coeff.push(self.beta * self.w_buf[i]);
                row += 1;
            }
            // … and the global column p (p_ij = w_i·t_ij) with coefficient
            // −β; together they form the PSD smooth-max covariance β·Cov_w.
            let dst = self.ut.row_mut(row);
            for i in 0..m {
                for j in 0..n {
                    dst[i * n + j] = self.w_buf[i] * t[(i, j)];
                }
            }
            self.coeff.push(-self.beta);
            row += 1;
        }
        if barrier_col {
            let dst = self.ut.row_mut(row);
            for i in 0..m {
                dst[i * n..(i + 1) * n].copy_from_slice(a.row(i));
            }
            self.coeff.push(self.ddphi / (nf * nf));
            row += 1;
        }
        if let Some(cap) = &problem.capacity {
            for i in 0..m {
                if self.cap_ddphi[i] != 0.0 {
                    let dst = self.ut.row_mut(row);
                    dst[i * n..(i + 1) * n].copy_from_slice(cap.usage.row(i));
                    self.coeff
                        .push(self.cap_ddphi[i] / (cap.limits[i] * cap.limits[i]));
                    row += 1;
                }
            }
        }
        debug_assert_eq!(row, rank);

        // W = Σ⁻¹ U.
        for k in 0..rank {
            let urow = self.ut.row(k);
            let wrow = self.wt.row_mut(k);
            for p in 0..mn {
                wrow[p] = self.sigma_inv[p] * urow[p];
            }
        }

        // Capacitance Cap = C⁻¹ + Uᵀ Σ⁻¹ U (LU: indefinite by design).
        if self.cap_mat.shape() != (rank, rank) {
            self.cap_mat = Matrix::zeros(rank, rank);
        }
        for k in 0..rank {
            for l in 0..rank {
                let mut v = vector::dot(self.ut.row(k), self.wt.row(l));
                if k == l {
                    v += 1.0 / self.coeff[k];
                }
                self.cap_mat[(k, l)] = v;
            }
        }
        if rank > 0 {
            self.cap_lu.refactor(&self.cap_mat)?;
        }

        // d_j = (D Σ⁻¹ Dᵀ)_jj — the simplex rows touch disjoint entries,
        // so this block is exactly diagonal.
        self.d_diag.clear();
        self.d_diag.resize(n, 0.0);
        for i in 0..m {
            for j in 0..n {
                self.d_diag[j] += self.sigma_inv[i * n + j];
            }
        }

        // G = D W and Q = Cap⁻¹ Gᵀ.
        if self.g_mat.shape() != (n, rank) {
            self.g_mat = Matrix::zeros(n, rank);
        } else {
            self.g_mat.as_mut_slice().fill(0.0);
        }
        for k in 0..rank {
            let wrow = self.wt.row(k);
            for i in 0..m {
                for j in 0..n {
                    self.g_mat[(j, k)] += wrow[i * n + j];
                }
            }
        }
        // Sharded Schur path (opt-in): never assemble S. Factor the
        // second-level capacitance Cap₂ = Cap − Gᵀ D⁻¹ G instead and
        // apply S⁻¹ through the Woodbury identity at solve time. A
        // singular Cap₂ falls through to the dense Schur assembly below.
        self.schur_sharded = false;
        if self.schur_shards > 0 {
            if self.factor_schur_sharded().is_ok() {
                self.schur_sharded = true;
                mfcp_obs::counter("optim.sharded.kkt_sharded").inc();
                return Ok(());
            }
            mfcp_obs::counter("optim.sharded.kkt_fallback").inc();
        }

        if self.q_mat.shape() != (rank, n) {
            self.q_mat = Matrix::zeros(rank, n);
        }
        if rank > 0 {
            for j in 0..n {
                self.cap_lu.solve_into(self.g_mat.row(j), &mut self.sr)?;
                for k in 0..rank {
                    self.q_mat[(k, j)] = self.sr[k];
                }
            }
        }

        // Schur complement S = D H⁻¹ Dᵀ = diag(d) − G Cap⁻¹ Gᵀ: SPD since
        // H is SPD, so Cholesky doubles as the fallback trigger. The
        // refactor runs the cache-blocked right-looking kernel (the N×N
        // Schur system is the cubic term of this path at Table-1 scale);
        // pipelines factoring many same-shape Schur systems — e.g. the S
        // perturbed re-solves of an MFCP-FG batch — can amortize the
        // setup further with `mfcp_linalg::CholeskyBatch`.
        if self.s_mat.shape() != (n, n) {
            self.s_mat = Matrix::zeros(n, n);
        }
        for j1 in 0..n {
            let grow = self.g_mat.row(j1);
            for j2 in 0..n {
                let mut v = if j1 == j2 { self.d_diag[j1] } else { 0.0 };
                for (k, &gv) in grow.iter().enumerate().take(rank) {
                    v -= gv * self.q_mat[(k, j2)];
                }
                self.s_mat[(j1, j2)] = v;
            }
        }
        self.schur.refactor(&self.s_mat)?;
        Ok(())
    }

    /// Contiguous task range of shard `s` out of `shards` (sizes differ by
    /// at most one; same split rule as `ShardedSolver`).
    fn shard_range(n: usize, shards: usize, s: usize) -> (usize, usize) {
        let base = n / shards;
        let rem = n % shards;
        let start = s * base + s.min(rem);
        (start, start + base + usize::from(s < rem))
    }

    /// Factors `Cap₂ = Cap − Gᵀ D⁻¹ G` for the sharded Schur path. The
    /// `O(N·rank²)` reduction is computed per contiguous task shard into
    /// disjoint partials and the partials are combined in ascending shard
    /// order, so the arithmetic is fixed for a given shard count.
    fn factor_schur_sharded(&mut self) -> Result<(), LinalgError> {
        let n = self.n;
        let rank = self.rank;
        for &d in &self.d_diag {
            if !(d.is_finite() && d > 0.0) {
                return Err(LinalgError::NotPositiveDefinite { pivot: 0 });
            }
        }
        if rank == 0 {
            // S is exactly diag(d): the solve is a pointwise divide.
            return Ok(());
        }
        let shards = self.schur_shards.min(n).max(1);
        self.shard_red.clear();
        self.shard_red.resize(shards * rank * rank, 0.0);
        for s in 0..shards {
            let (j0, j1) = Self::shard_range(n, shards, s);
            let dst = &mut self.shard_red[s * rank * rank..(s + 1) * rank * rank];
            for j in j0..j1 {
                let grow = self.g_mat.row(j);
                let dinv = 1.0 / self.d_diag[j];
                for (k, &gk) in grow.iter().enumerate().take(rank) {
                    let gkd = gk * dinv;
                    for (dv, &gl) in dst[k * rank..(k + 1) * rank].iter_mut().zip(grow) {
                        *dv += gkd * gl;
                    }
                }
            }
        }
        if self.cap2_mat.shape() != (rank, rank) {
            self.cap2_mat = Matrix::zeros(rank, rank);
        }
        self.cap2_mat
            .as_mut_slice()
            .copy_from_slice(self.cap_mat.as_slice());
        for s in 0..shards {
            let part = &self.shard_red[s * rank * rank..(s + 1) * rank * rank];
            for (dv, &pv) in self.cap2_mat.as_mut_slice().iter_mut().zip(part) {
                *dv -= pv;
            }
        }
        self.cap2_lu.refactor(&self.cap2_mat)
    }

    /// Applies `S⁻¹` to `zn` in place through the second-level Woodbury
    /// identity: `S⁻¹ r = D⁻¹ r + D⁻¹ G Cap₂⁻¹ Gᵀ D⁻¹ r`. Allocation-free
    /// after warm-up; the two `O(N·rank)` sweeps run per shard with the
    /// cross-shard reduction combined in ascending shard order.
    fn solve_schur_sharded(&mut self) -> Result<(), LinalgError> {
        let n = self.n;
        let rank = self.rank;
        for (z, &d) in self.zn.iter_mut().zip(&self.d_diag) {
            *z /= d;
        }
        if rank == 0 {
            return Ok(());
        }
        let shards = self.schur_shards.min(n).max(1);
        // u = Gᵀ (D⁻¹ r): per-shard partials, combined in shard order.
        self.shard_red.clear();
        self.shard_red.resize(shards * rank, 0.0);
        for s in 0..shards {
            let (j0, j1) = Self::shard_range(n, shards, s);
            let dst = &mut self.shard_red[s * rank..(s + 1) * rank];
            for j in j0..j1 {
                let zj = self.zn[j];
                for (uv, &gv) in dst.iter_mut().zip(self.g_mat.row(j)) {
                    *uv += gv * zj;
                }
            }
        }
        self.sh_u.clear();
        self.sh_u.resize(rank, 0.0);
        for s in 0..shards {
            let part = &self.shard_red[s * rank..(s + 1) * rank];
            for (uv, &pv) in self.sh_u.iter_mut().zip(part) {
                *uv += pv;
            }
        }
        self.cap2_lu.solve_into(&self.sh_u, &mut self.sr)?;
        for s in 0..shards {
            let (j0, j1) = Self::shard_range(n, shards, s);
            for j in j0..j1 {
                let mut acc = 0.0;
                for (&gv, &wv) in self.g_mat.row(j).iter().zip(&self.sr) {
                    acc += gv * wv;
                }
                self.zn[j] += acc / self.d_diag[j];
            }
        }
        Ok(())
    }

    fn factor_dense(
        &mut self,
        problem: &MatchingProblem,
        params: &RelaxationParams,
        x: &Matrix,
    ) -> Result<(), LinalgError> {
        assemble_kkt_matrix_into(problem, params, x, &mut self.k_dense);
        self.dense_lu.refactor(&self.k_dense)
    }

    /// Solves `K [y; z] = rhs` in place (`rhs.len() == MN + N`), reusing
    /// the current factorization. Allocation-free after warm-up.
    ///
    /// Performs one step of iterative refinement in working precision:
    /// the Woodbury/Schur recipe and the dense LU round differently, and
    /// the residual-correction solve pushes both to the same accuracy
    /// limit, which is what lets the structured path agree with the
    /// dense oracle to 1e-9 even on ill-conditioned saddle systems.
    pub fn solve_in_place(&mut self, rhs: &mut [f64]) -> Result<(), LinalgError> {
        if self.mode == KktMode::Empty {
            return Err(LinalgError::Singular { pivot: 0 });
        }
        let mut x = std::mem::take(&mut self.refine_x);
        let mut r = std::mem::take(&mut self.refine_r);
        x.clear();
        x.extend_from_slice(rhs);
        let result = (|| {
            self.solve_once(&mut x)?;
            r.clear();
            r.resize(rhs.len(), 0.0);
            self.apply_k(&x, &mut r);
            for (ri, &bi) in r.iter_mut().zip(rhs.iter()) {
                *ri = bi - *ri;
            }
            self.solve_once(&mut r)?;
            for (xi, &di) in x.iter_mut().zip(r.iter()) {
                *xi += di;
            }
            Ok(())
        })();
        if result.is_ok() {
            rhs.copy_from_slice(&x);
        }
        self.refine_x = x;
        self.refine_r = r;
        result
    }

    /// Multiplies the factored saddle matrix: `out = K v`, using the
    /// structured representation (`Σ + U C Uᵀ` plus the simplex rows) or
    /// the assembled dense matrix, matching the current mode.
    fn apply_k(&mut self, v: &[f64], out: &mut [f64]) {
        let (m, n) = (self.m, self.n);
        let mn = m * n;
        match self.mode {
            KktMode::Empty => unreachable!("apply_k requires a factorization"),
            KktMode::Dense => {
                for (o, row) in out.iter_mut().zip((0..mn + n).map(|p| self.k_dense.row(p))) {
                    *o = vector::dot(row, v);
                }
            }
            KktMode::Structured => {
                let (y, z) = v.split_at(mn);
                let (oy, oz) = out.split_at_mut(mn);
                // oy = Σ y (Σ is stored inverted) + U C Uᵀ y + Dᵀ z.
                for (o, (&si, &yv)) in oy.iter_mut().zip(self.sigma_inv.iter().zip(y)) {
                    *o = yv / si;
                }
                self.sr.clear();
                for k in 0..self.rank {
                    self.sr.push(self.coeff[k] * vector::dot(self.ut.row(k), y));
                }
                for k in 0..self.rank {
                    let urow = self.ut.row(k);
                    let cv = self.sr[k];
                    for (o, &uv) in oy.iter_mut().zip(urow) {
                        *o += cv * uv;
                    }
                }
                oz.fill(0.0);
                for i in 0..m {
                    for j in 0..n {
                        oy[i * n + j] += z[j];
                        oz[j] += y[i * n + j];
                    }
                }
            }
        }
    }

    /// One pass of the factored solve recipe, without refinement.
    fn solve_once(&mut self, rhs: &mut [f64]) -> Result<(), LinalgError> {
        let (m, n) = (self.m, self.n);
        let mn = m * n;
        match self.mode {
            KktMode::Empty => Err(LinalgError::Singular { pivot: 0 }),
            KktMode::Dense => {
                self.dense_lu.solve_into(rhs, &mut self.sol)?;
                rhs.copy_from_slice(&self.sol);
                Ok(())
            }
            KktMode::Structured => {
                assert_eq!(rhs.len(), mn + n, "kkt rhs length");
                let (b, c) = rhs.split_at_mut(mn);
                // t1 = H⁻¹ b
                self.t1.clear();
                self.t1.resize(mn, 0.0);
                apply_h_inv(
                    &self.sigma_inv,
                    &self.ut,
                    &self.wt,
                    self.rank,
                    &self.cap_lu,
                    b,
                    &mut self.t1,
                    &mut self.sr,
                    &mut self.qr,
                )?;
                // z = S⁻¹ (D t1 − c)
                self.zn.clear();
                self.zn.extend(c.iter().take(n).map(|&v| -v));
                for i in 0..m {
                    for j in 0..n {
                        self.zn[j] += self.t1[i * n + j];
                    }
                }
                if self.schur_sharded {
                    self.solve_schur_sharded()?;
                } else {
                    self.schur.solve_in_place(&mut self.zn)?;
                }
                // y = H⁻¹ (b − Dᵀ z)
                self.t2.clear();
                self.t2.resize(mn, 0.0);
                for i in 0..m {
                    for j in 0..n {
                        self.t2[i * n + j] = b[i * n + j] - self.zn[j];
                    }
                }
                apply_h_inv(
                    &self.sigma_inv,
                    &self.ut,
                    &self.wt,
                    self.rank,
                    &self.cap_lu,
                    &self.t2,
                    &mut self.t1,
                    &mut self.sr,
                    &mut self.qr,
                )?;
                b.copy_from_slice(&self.t1);
                c.copy_from_slice(&self.zn);
                Ok(())
            }
        }
    }
}

/// Contracts the adjoint solution `y` (flattened `M·N`) with the
/// closed-form cross Hessians:
///
/// ```text
/// ∂²F/∂x_ij ∂t_kl = w_i δ_ik δ_jl + β t_ij w_i (δ_ik − w_k) x_kl
/// (∇²_XT F)ᵀ y [kl] = w_k y_kl + β w_k x_kl (r_k − r̄)
/// ∂²F/∂x_ij ∂a_kl = φ''(g) (x_kl/N)(a_ij/N) + φ'(g) δ_ik δ_jl / N
/// (∇²_XA F)ᵀ y [kl] = φ'' x_kl q / N² + φ' y_kl / N
/// ```
///
/// with `r_i = Σ_j t_ij y_ij`, `r̄ = Σ_i w_i r_i`, `q = Σ_ij y_ij a_ij`.
fn contract_cross_hessians(
    problem: &MatchingProblem,
    x_star: &Matrix,
    y: &[f64],
    beta: f64,
    dphi: f64,
    ddphi: f64,
    w: &[f64],
) -> KktGradients {
    let (m, n) = x_star.shape();
    let nf = n as f64;
    let t = &problem.times;
    let a = &problem.reliability;
    let idx = |i: usize, j: usize| i * n + j;

    let mut r = vec![0.0; m];
    let mut q = 0.0;
    for i in 0..m {
        for j in 0..n {
            r[i] += t[(i, j)] * y[idx(i, j)];
            q += a[(i, j)] * y[idx(i, j)];
        }
    }
    let rbar: f64 = (0..m).map(|i| w[i] * r[i]).sum();

    let mut dl_dt = Matrix::zeros(m, n);
    let mut dl_da = Matrix::zeros(m, n);
    for kcl in 0..m {
        for l in 0..n {
            let yv = y[idx(kcl, l)];
            let vt = w[kcl] * yv + beta * w[kcl] * x_star[(kcl, l)] * (r[kcl] - rbar);
            dl_dt[(kcl, l)] = -vt;
            let va = ddphi * x_star[(kcl, l)] * q / (nf * nf) + dphi * yv / nf;
            dl_da[(kcl, l)] = -va;
        }
    }
    KktGradients { dl_dt, dl_da }
}

/// Computes `∂L/∂T` and `∂L/∂A` at the relaxed optimum `x_star` given the
/// upstream gradient `dl_dx = ∂L/∂X*`.
///
/// Convenience wrapper over [`implicit_gradients_with`] with a throwaway
/// workspace; hot paths should hold a [`KktWorkspace`] and call the
/// `_with` variant to reuse factorization storage.
///
/// # Errors
/// Returns an error when the KKT matrix is singular (e.g. `rho = 0` with a
/// vertex solution).
///
/// # Panics
/// Panics if any speedup curve is non-trivial (non-convex case — use the
/// zeroth-order path). Both cost kinds are supported ([`CostKind::LinearSum`]
/// is the β → 0 limit of the smooth-max formulas).
pub fn implicit_gradients(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    x_star: &Matrix,
    dl_dx: &Matrix,
) -> Result<KktGradients, LinalgError> {
    let mut ws = KktWorkspace::new();
    implicit_gradients_with(problem, params, x_star, dl_dx, &mut ws)
}

/// [`implicit_gradients`] reusing a caller-owned [`KktWorkspace`]: one
/// structured (or dense-fallback) factorization, one adjoint solve, and
/// the closed-form contraction — no saddle matrix materialized on the
/// structured path.
///
/// # Errors
/// Returns an error when the KKT system cannot be factored or solved.
///
/// # Panics
/// Same convexity restriction as [`implicit_gradients`].
pub fn implicit_gradients_with(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    x_star: &Matrix,
    dl_dx: &Matrix,
    ws: &mut KktWorkspace,
) -> Result<KktGradients, LinalgError> {
    assert!(
        problem.speedup.iter().all(|c| c.is_trivial()),
        "MFCP-AD requires the convex (sequential) setting; use zeroth-order gradients for parallel execution"
    );
    let (m, n) = x_star.shape();
    assert_eq!((m, n), problem.times.shape());
    assert_eq!(dl_dx.shape(), (m, n));
    let mn = m * n;
    if mn == 0 {
        return Ok(KktGradients {
            dl_dt: Matrix::zeros(m, n),
            dl_da: Matrix::zeros(m, n),
        });
    }

    ws.factor(problem, params, x_star)?;

    // ---- adjoint solve K [y; z] = [dl_dx; 0] --------------------------
    let mut rhs = std::mem::take(&mut ws.rhs);
    rhs.clear();
    rhs.resize(mn + n, 0.0);
    rhs[..mn].copy_from_slice(dl_dx.as_slice());
    let result = match ws.solve_in_place(&mut rhs) {
        Ok(()) => Ok(contract_cross_hessians(
            problem,
            x_star,
            &rhs[..mn],
            ws.beta,
            ws.dphi,
            ws.ddphi,
            &ws.w_buf,
        )),
        Err(e) => Err(e),
    };
    ws.rhs = rhs;
    result
}

/// Dense-LU reference implementation of [`implicit_gradients`]: assembles
/// the full `(MN+N)×(MN+N)` saddle matrix and solves it directly,
/// bypassing the structured elimination entirely. Kept public as the
/// oracle for the structured-vs-dense differential test suite and for the
/// perfgate comparison; production code should use the workspace path.
///
/// # Errors
/// Returns an error when the dense KKT matrix is singular.
///
/// # Panics
/// Same convexity restriction as [`implicit_gradients`].
pub fn implicit_gradients_dense(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    x_star: &Matrix,
    dl_dx: &Matrix,
) -> Result<KktGradients, LinalgError> {
    assert!(
        problem.speedup.iter().all(|c| c.is_trivial()),
        "MFCP-AD requires the convex (sequential) setting; use zeroth-order gradients for parallel execution"
    );
    let (m, n) = x_star.shape();
    assert_eq!((m, n), problem.times.shape());
    assert_eq!(dl_dx.shape(), (m, n));
    let mn = m * n;
    if mn == 0 {
        return Ok(KktGradients {
            dl_dt: Matrix::zeros(m, n),
            dl_da: Matrix::zeros(m, n),
        });
    }

    let stats = objective::cluster_stats(problem, params, x_star);
    let g = objective::reliability_slack(problem, x_star);
    let dphi = objective::barrier_derivative(params, g);
    let ddphi = barrier_second_derivative(params, g);
    // The linear-sum ablation is the β → 0 limit with uniform weights:
    // the cost Hessian vanishes and the cross term reduces to the
    // identity (∂²F/∂x_ij∂t_kl = δ_ik δ_jl).
    let (beta, w): (f64, Vec<f64>) = match params.cost {
        CostKind::SmoothMax => (params.beta, stats.weights.clone()),
        CostKind::LinearSum => (0.0, vec![1.0; m]),
    };
    let k = assemble_kkt_matrix(problem, params, x_star);
    let mut rhs = vec![0.0; mn + n];
    rhs[..mn].copy_from_slice(dl_dx.as_slice());
    let lu = Lu::factor(&k)?;
    let mut y_full = lu.solve(&rhs)?;
    // One refinement step, mirroring the workspace path, so the oracle
    // reaches the same accuracy limit it is compared against.
    let residual: Vec<f64> = (0..mn + n)
        .map(|p| rhs[p] - mfcp_linalg::vector::dot(k.row(p), &y_full))
        .collect();
    let correction = lu.solve(&residual)?;
    for (y, d) in y_full.iter_mut().zip(&correction) {
        *y += d;
    }
    Ok(contract_cross_hessians(
        problem,
        x_star,
        &y_full[..mn],
        beta,
        dphi,
        ddphi,
        &w,
    ))
}

/// Full Jacobians of the relaxed optimum with respect to the prediction
/// matrices, as dense `(M·N) x (M·N)` matrices in row-major `(i·N + j)`
/// flattening: `dx_dt[(p, q)] = ∂X*_p / ∂T_q`.
#[derive(Debug, Clone)]
pub struct SolutionJacobians {
    /// `∂X*/∂T`.
    pub dx_dt: Matrix,
    /// `∂X*/∂A`.
    pub dx_da: Matrix,
}

/// Materializes `∂X*/∂T` and `∂X*/∂A` at the relaxed optimum — the
/// interpretability view of the matching layer: column `(k, l)` says how
/// every assignment probability moves when the prediction for task `l` on
/// cluster `k` changes. One LU factorization, `2·M·N` solves.
///
/// Training never needs this (it uses the adjoint VJP in
/// [`implicit_gradients`]); use it for per-round sensitivity reports and
/// diagnostics. Same convexity restriction as the rest of this module.
pub fn solution_jacobians(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    x_star: &Matrix,
) -> Result<SolutionJacobians, LinalgError> {
    let mut ws = KktWorkspace::new();
    solution_jacobians_with(problem, params, x_star, &mut ws)
}

/// [`solution_jacobians`] reusing a caller-owned [`KktWorkspace`]: the
/// factorization is built once and all `2·M·N` sensitivity solves reuse
/// it (structured elimination when applicable, dense LU otherwise).
///
/// # Errors
/// Returns an error when the KKT system cannot be factored or solved.
///
/// # Panics
/// Same convexity restriction as [`solution_jacobians`].
pub fn solution_jacobians_with(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    x_star: &Matrix,
    ws: &mut KktWorkspace,
) -> Result<SolutionJacobians, LinalgError> {
    assert!(
        problem.speedup.iter().all(|c| c.is_trivial()),
        "solution Jacobians require the convex (sequential) setting"
    );
    let (m, n) = x_star.shape();
    let mn = m * n;
    if mn == 0 {
        return Ok(SolutionJacobians {
            dx_dt: Matrix::zeros(0, 0),
            dx_da: Matrix::zeros(0, 0),
        });
    }
    ws.factor(problem, params, x_star)?;
    let (beta, dphi, ddphi) = (ws.beta, ws.dphi, ws.ddphi);
    let w = ws.w_buf.clone();
    let t = &problem.times;
    let a = &problem.reliability;
    let nf = n as f64;
    let idx = |i: usize, j: usize| i * n + j;

    let mut dx_dt = Matrix::zeros(mn, mn);
    let mut dx_da = Matrix::zeros(mn, mn);
    let mut rhs = std::mem::take(&mut ws.rhs);
    rhs.clear();
    rhs.resize(mn + n, 0.0);
    let result = (|| -> Result<(), LinalgError> {
        for kcl in 0..m {
            for l in 0..n {
                let col = idx(kcl, l);
                // ---- dX/dT column: rhs = −∇²_XT F e_(k,l) -----------------
                // ∂²F/∂x_ij∂t_kl = w_i δ_ik δ_jl + β t_ij w_i (δ_ik − w_k) x_kl
                for slot in rhs.iter_mut() {
                    *slot = 0.0;
                }
                for i in 0..m {
                    for j in 0..n {
                        let mut v = 0.0;
                        if i == kcl && j == l {
                            v += w[i];
                        }
                        v += beta
                            * t[(i, j)]
                            * w[i]
                            * ((i == kcl) as u8 as f64 - w[kcl])
                            * x_star[(kcl, l)];
                        rhs[idx(i, j)] = -v;
                    }
                }
                ws.solve_in_place(&mut rhs)?;
                for p in 0..mn {
                    dx_dt[(p, col)] = rhs[p];
                }
                // ---- dX/dA column ------------------------------------------
                // ∂²F/∂x_ij∂a_kl = φ''(g)(x_kl/N)(a_ij/N) + φ'(g) δ_ik δ_jl/N
                for slot in rhs.iter_mut() {
                    *slot = 0.0;
                }
                for i in 0..m {
                    for j in 0..n {
                        let mut v = ddphi * x_star[(kcl, l)] * a[(i, j)] / (nf * nf);
                        if i == kcl && j == l {
                            v += dphi / nf;
                        }
                        rhs[idx(i, j)] = -v;
                    }
                }
                ws.solve_in_place(&mut rhs)?;
                for p in 0..mn {
                    dx_da[(p, col)] = rhs[p];
                }
            }
        }
        Ok(())
    })();
    ws.rhs = rhs;
    result?;
    Ok(SolutionJacobians { dx_dt, dx_da })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve_relaxed, SolverOptions};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tight_opts() -> SolverOptions {
        SolverOptions {
            max_iters: 20_000,
            lr: 0.5,
            tol: 1e-14,
            ..Default::default()
        }
    }

    fn random_setup(seed: u64, m: usize, n: usize) -> (MatchingProblem, RelaxationParams, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..2.5));
        let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.75..1.0));
        let problem = MatchingProblem::new(t, a, 0.7);
        let params = RelaxationParams {
            beta: 3.0,
            lambda: 0.05,
            rho: 0.05,
            ..Default::default()
        };
        let c = Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));
        (problem, params, c)
    }

    /// L(T, A) = <c, X*(T, A)>: the canonical linear probe for testing
    /// Jacobians of an argmin.
    fn probe_loss(problem: &MatchingProblem, params: &RelaxationParams, c: &Matrix) -> f64 {
        let sol = solve_relaxed(problem, params, &tight_opts());
        // Elementwise contraction <c, X*> without going through the
        // shape-checked hadamard Result (shapes are equal by construction).
        c.as_slice()
            .iter()
            .zip(sol.x.as_slice())
            .map(|(ci, xi)| ci * xi)
            .sum()
    }

    #[test]
    fn dt_matches_finite_differences() {
        let (problem, params, c) = random_setup(1, 3, 4);
        let sol = solve_relaxed(&problem, &params, &tight_opts());
        let grads = implicit_gradients(&problem, &params, &sol.x, &c).unwrap();

        let h = 1e-5;
        for &(i, j) in &[(0usize, 0usize), (1, 2), (2, 3)] {
            let mut tp = problem.clone();
            tp.times[(i, j)] += h;
            let mut tm = problem.clone();
            tm.times[(i, j)] -= h;
            let numeric = (probe_loss(&tp, &params, &c) - probe_loss(&tm, &params, &c)) / (2.0 * h);
            let analytic = grads.dl_dt[(i, j)];
            assert!(
                (analytic - numeric).abs() < 2e-3 * (1.0 + numeric.abs()),
                "dT[{i},{j}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn da_matches_finite_differences() {
        // Make the barrier bind: gamma close to the achievable mean.
        let mut rng = StdRng::seed_from_u64(2);
        let t = Matrix::from_fn(3, 4, |_, _| rng.gen_range(0.5..2.5));
        let a = Matrix::from_fn(3, 4, |_, _| rng.gen_range(0.75..0.95));
        let problem = MatchingProblem::new(t, a, 0.82);
        let params = RelaxationParams {
            beta: 3.0,
            lambda: 0.1,
            rho: 0.05,
            ..Default::default()
        };
        let c = Matrix::from_fn(3, 4, |_, _| rng.gen_range(-1.0..1.0));
        let sol = solve_relaxed(&problem, &params, &tight_opts());
        let g = objective::reliability_slack(&problem, &sol.x);
        assert!(g > 0.0, "barrier must be active-side feasible");
        let grads = implicit_gradients(&problem, &params, &sol.x, &c).unwrap();

        let h = 1e-5;
        for &(i, j) in &[(0usize, 1usize), (1, 0), (2, 2)] {
            let mut pp = problem.clone();
            pp.reliability[(i, j)] += h;
            let mut pm = problem.clone();
            pm.reliability[(i, j)] -= h;
            let numeric = (probe_loss(&pp, &params, &c) - probe_loss(&pm, &params, &c)) / (2.0 * h);
            let analytic = grads.dl_da[(i, j)];
            assert!(
                (analytic - numeric).abs() < 2e-3 * (1.0 + numeric.abs()),
                "dA[{i},{j}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn reliability_gradient_nonzero_through_barrier() {
        // The whole point of the interior-point reformulation: ∂X*/∂A must
        // not vanish when the constraint is strictly satisfied.
        let (problem, params, c) = random_setup(3, 3, 5);
        let sol = solve_relaxed(&problem, &params, &tight_opts());
        let grads = implicit_gradients(&problem, &params, &sol.x, &c).unwrap();
        assert!(
            grads.dl_da.max_abs() > 1e-8,
            "log barrier should give meaningful reliability gradients"
        );
    }

    #[test]
    fn hard_penalty_gradient_vanishes_when_feasible() {
        // The ablation's failure mode (paper Table 1 row 2): with a hinge
        // penalty and a satisfied constraint, ∂X*/∂A ≡ 0.
        let (problem, mut params, c) = random_setup(4, 3, 5);
        params.barrier = BarrierKind::HardPenalty;
        let sol = solve_relaxed(&problem, &params, &tight_opts());
        assert!(objective::reliability_slack(&problem, &sol.x) > 0.0);
        let grads = implicit_gradients(&problem, &params, &sol.x, &c).unwrap();
        assert!(grads.dl_da.max_abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "convex")]
    fn rejects_parallel_setting() {
        let (mut problem, params, c) = random_setup(5, 2, 3);
        problem.speedup = vec![crate::speedup::SpeedupCurve::paper_parallel(); 2];
        let x = crate::solver::uniform_init(2, 3);
        let _ = implicit_gradients(&problem, &params, &x, &c);
    }

    #[test]
    fn linear_cost_gradients_match_finite_differences() {
        let (problem, mut params, c) = random_setup(8, 3, 4);
        params.cost = CostKind::LinearSum;
        let sol = solve_relaxed(&problem, &params, &tight_opts());
        let grads = implicit_gradients(&problem, &params, &sol.x, &c).unwrap();
        let h = 1e-5;
        for &(i, j) in &[(0usize, 0usize), (2, 3)] {
            let mut tp = problem.clone();
            tp.times[(i, j)] += h;
            let mut tm = problem.clone();
            tm.times[(i, j)] -= h;
            let numeric = (probe_loss(&tp, &params, &c) - probe_loss(&tm, &params, &c)) / (2.0 * h);
            let analytic = grads.dl_dt[(i, j)];
            assert!(
                (analytic - numeric).abs() < 2e-3 * (1.0 + numeric.abs()),
                "dT[{i},{j}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn jacobian_consistent_with_adjoint_vjp() {
        // For any upstream gradient c: implicit_gradients(c) must equal
        // the contraction of c with the materialized Jacobians.
        let (problem, params, c) = random_setup(6, 3, 4);
        let sol = solve_relaxed(&problem, &params, &tight_opts());
        let grads = implicit_gradients(&problem, &params, &sol.x, &c).unwrap();
        let jac = solution_jacobians(&problem, &params, &sol.x).unwrap();
        let (m, n) = (3, 4);
        let mn = m * n;
        let cvec: Vec<f64> = (0..mn).map(|p| c[(p / n, p % n)]).collect();
        for kcl in 0..m {
            for l in 0..n {
                let col = kcl * n + l;
                let via_jac_t: f64 = (0..mn).map(|p| cvec[p] * jac.dx_dt[(p, col)]).sum();
                let via_jac_a: f64 = (0..mn).map(|p| cvec[p] * jac.dx_da[(p, col)]).sum();
                assert!(
                    (via_jac_t - grads.dl_dt[(kcl, l)]).abs() < 1e-8,
                    "dT[{kcl},{l}]: {via_jac_t} vs {}",
                    grads.dl_dt[(kcl, l)]
                );
                assert!(
                    (via_jac_a - grads.dl_da[(kcl, l)]).abs() < 1e-8,
                    "dA[{kcl},{l}]: {via_jac_a} vs {}",
                    grads.dl_da[(kcl, l)]
                );
            }
        }
    }

    #[test]
    fn jacobian_columns_sum_to_zero_within_tasks() {
        // Perturbing any prediction moves mass within each task's simplex
        // column, so ∂(Σ_i x_ij)/∂θ = 0 for every task j.
        let (problem, params, _) = random_setup(7, 3, 4);
        let sol = solve_relaxed(&problem, &params, &tight_opts());
        let jac = solution_jacobians(&problem, &params, &sol.x).unwrap();
        let (m, n) = (3, 4);
        for col in 0..m * n {
            for j in 0..n {
                let mass_change: f64 = (0..m).map(|i| jac.dx_dt[(i * n + j, col)]).sum();
                assert!(
                    mass_change.abs() < 1e-8,
                    "column {col}, task {j}: mass change {mass_change}"
                );
            }
        }
    }

    #[test]
    fn empty_problem_returns_zeros() {
        let problem = MatchingProblem::new(Matrix::zeros(2, 0), Matrix::zeros(2, 0), 0.5);
        let params = RelaxationParams::default();
        let x = Matrix::zeros(2, 0);
        let g = implicit_gradients(&problem, &params, &x, &Matrix::zeros(2, 0)).unwrap();
        assert_eq!(g.dl_dt.shape(), (2, 0));
    }
}
