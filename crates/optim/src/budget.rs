//! Per-request solve budgets: deadlines and cooperative cancellation.
//!
//! A long-running exchange daemon cannot let one pathological instance
//! hold the matching loop hostage — every request carries a latency
//! budget, and a solve that blows it must yield the thread *now* and let
//! the ladder degrade to the greedy rung instead of queueing work
//! unboundedly behind it. [`Budget`] packages the two mechanisms the
//! guarded solvers check on every inner iteration (PGD steps and Newton
//! KKT iterations both run through the same per-iterate guard):
//!
//! * a **wall-clock deadline** — an absolute [`Instant`] past which the
//!   solve aborts with [`crate::recovery::SolveError::DeadlineExceeded`];
//! * a **cancel token** — a shared flag another thread (an admission
//!   controller, a shutdown path, a chaos harness) can set to stop the
//!   solve at the next iterate boundary, deterministically.
//!
//! Budgets are cooperative: nothing is interrupted mid-factorization, so
//! expiry latency is one inner iteration. The greedy fallback rung always
//! runs regardless of the budget — a request past its deadline still gets
//! a feasible matching, just not an optimized one.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation flag. Cloning is cheap; all clones observe the
/// same state. Cancellation is one-way — there is no reset — so a token
/// is per-request, not per-solver.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; every solve holding a clone of this token
    /// aborts at its next iterate boundary.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A per-request solve budget: an optional absolute deadline plus an
/// optional cancel token. The default budget is unlimited.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
}

impl Budget {
    /// A budget with no deadline and no cancel token.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A budget expiring `limit` from now.
    pub fn with_deadline(limit: Duration) -> Self {
        Budget {
            deadline: Some(Instant::now() + limit),
            cancel: None,
        }
    }

    /// A budget expiring at the absolute instant `at`.
    pub fn until(at: Instant) -> Self {
        Budget {
            deadline: Some(at),
            cancel: None,
        }
    }

    /// Attaches a cancel token (builder-style).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether this budget can ever expire (deadline or token present).
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }

    /// Whether the budget is spent: the deadline has passed or the
    /// cancel token fired. Checked by the guarded solvers on every
    /// accepted iterate and between ladder rungs.
    pub fn expired(&self) -> bool {
        if let Some(tok) = &self.cancel {
            if tok.is_cancelled() {
                return true;
            }
        }
        self.deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
    }

    /// Time left until the deadline (`None` when no deadline is set;
    /// zero once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|deadline| deadline.saturating_duration_since(Instant::now()))
    }
}

impl fmt::Display for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.deadline, &self.cancel) {
            (None, None) => f.write_str("unlimited"),
            (Some(_), None) => write!(f, "deadline({:?} left)", self.remaining().unwrap()),
            (None, Some(t)) => write!(f, "cancellable(fired={})", t.is_cancelled()),
            (Some(_), Some(t)) => write!(
                f,
                "deadline({:?} left, cancel fired={})",
                self.remaining().unwrap(),
                t.is_cancelled()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_expires() {
        let b = Budget::unlimited();
        assert!(!b.is_limited());
        assert!(!b.expired());
        assert_eq!(b.remaining(), None);
    }

    #[test]
    fn deadline_expires() {
        let b = Budget::with_deadline(Duration::from_secs(3600));
        assert!(b.is_limited());
        assert!(!b.expired());
        assert!(b.remaining().unwrap() > Duration::from_secs(3000));
        let past = Budget::until(Instant::now() - Duration::from_millis(1));
        assert!(past.expired());
        assert_eq!(past.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn cancel_token_fires_across_clones() {
        let tok = CancelToken::new();
        let b = Budget::unlimited().with_cancel(tok.clone());
        assert!(b.is_limited());
        assert!(!b.expired());
        tok.cancel();
        assert!(b.expired());
        assert!(tok.is_cancelled());
    }
}
