//! Deployment-time discretization of relaxed matchings (§3.2: "during
//! testing or system deployment, the matching X* is obtained using the
//! continuous version ... and subsequently rounded to produce discrete
//! solutions"), plus reliability repair and local search.

use crate::objective::{CostKind, RelaxationParams};
use crate::problem::{Assignment, MatchingProblem};
use crate::solver::{solve_relaxed, SolverOptions};
use mfcp_linalg::{vector, Matrix};

/// The discrete cost an assignment pays under the declared cost kind:
/// the makespan for [`CostKind::SmoothMax`], the summed cluster time for
/// the linear ablation.
pub fn discrete_cost(problem: &MatchingProblem, assignment: &Assignment, cost: CostKind) -> f64 {
    match cost {
        CostKind::SmoothMax => assignment.makespan(problem),
        CostKind::LinearSum => assignment.cluster_times(problem).iter().sum(),
    }
}

/// Rounds a relaxed matching to the per-task argmax cluster.
pub fn round_argmax(x: &Matrix) -> Assignment {
    let mut cluster_of = Vec::with_capacity(x.cols());
    for j in 0..x.cols() {
        let col = x.col(j);
        cluster_of.push(vector::argmax(&col).unwrap_or(0));
    }
    Assignment::new(cluster_of)
}

/// Greedily repairs the reliability constraint: while infeasible, apply
/// the single-task reassignment with the best reliability gain per unit of
/// makespan increase. Returns whether the result is feasible.
pub fn repair_reliability(problem: &MatchingProblem, assignment: &mut Assignment) -> bool {
    let m = problem.clusters();
    let n = problem.tasks();
    if n == 0 {
        return true;
    }
    for _ in 0..(m * n) {
        if assignment.is_feasible(problem) {
            return true;
        }
        let base_makespan = assignment.makespan(problem);
        let mut best: Option<(usize, usize, f64)> = None; // (task, cluster, score)
        for j in 0..n {
            let current = assignment.cluster_of[j];
            for c in 0..m {
                if c == current {
                    continue;
                }
                let gain = problem.reliability[(c, j)] - problem.reliability[(current, j)];
                if gain <= 0.0 {
                    continue;
                }
                let mut trial = assignment.clone();
                trial.cluster_of[j] = c;
                let cost = (trial.makespan(problem) - base_makespan).max(0.0);
                let score = gain / (1.0 + cost);
                if best.is_none_or(|(_, _, s)| score > s) {
                    best = Some((j, c, score));
                }
            }
        }
        match best {
            Some((j, c, _)) => assignment.cluster_of[j] = c,
            None => break, // no reliability-improving move exists
        }
    }
    assignment.is_feasible(problem)
}

/// Feasibility-preserving local search on the makespan: repeatedly tries
/// single-task moves and pairwise swaps, accepting strict improvements,
/// until a fixpoint or `max_rounds`.
pub fn local_search(problem: &MatchingProblem, assignment: &mut Assignment, max_rounds: usize) {
    local_search_with_cost(problem, assignment, max_rounds, CostKind::SmoothMax)
}

/// [`local_search`] generalized to the declared cost kind, so the
/// deployment pipeline optimizes the same objective its relaxation
/// declared (the Table 1 linear-cost ablation must *not* get a makespan
/// local search for free).
pub fn local_search_with_cost(
    problem: &MatchingProblem,
    assignment: &mut Assignment,
    max_rounds: usize,
    cost: CostKind,
) {
    let m = problem.clusters();
    let n = problem.tasks();
    for _ in 0..max_rounds {
        let mut improved = false;
        let mut best_span = discrete_cost(problem, assignment, cost);
        // Single-task moves.
        for j in 0..n {
            let original = assignment.cluster_of[j];
            for c in 0..m {
                if c == original {
                    continue;
                }
                assignment.cluster_of[j] = c;
                let span = discrete_cost(problem, assignment, cost);
                if span < best_span - 1e-12 && assignment.is_feasible(problem) {
                    best_span = span;
                    improved = true;
                } else {
                    assignment.cluster_of[j] = original;
                }
                if assignment.cluster_of[j] == c {
                    break; // accepted; re-evaluate moves for next task
                }
            }
        }
        // Pairwise swaps.
        for j in 0..n {
            for k in (j + 1)..n {
                let (cj, ck) = (assignment.cluster_of[j], assignment.cluster_of[k]);
                if cj == ck {
                    continue;
                }
                assignment.cluster_of[j] = ck;
                assignment.cluster_of[k] = cj;
                let span = discrete_cost(problem, assignment, cost);
                if span < best_span - 1e-12 && assignment.is_feasible(problem) {
                    best_span = span;
                    improved = true;
                } else {
                    assignment.cluster_of[j] = cj;
                    assignment.cluster_of[k] = ck;
                }
            }
        }
        if !improved {
            break;
        }
    }
}

/// Greedily repairs capacity violations: while any cluster exceeds its
/// limit, move the task whose relocation costs the least makespan off the
/// most-overloaded cluster. Returns whether all limits hold afterwards.
pub fn repair_capacity(problem: &MatchingProblem, assignment: &mut Assignment) -> bool {
    let Some(cap) = &problem.capacity else {
        return true;
    };
    let m = problem.clusters();
    let n = problem.tasks();
    for _ in 0..(m * n) {
        // Per-cluster usage.
        let mut used = vec![0.0; m];
        for (j, &c) in assignment.cluster_of.iter().enumerate() {
            used[c] += cap.usage[(c, j)];
        }
        let Some(worst) = (0..m)
            .filter(|&i| used[i] > cap.limits[i] + 1e-9)
            .max_by(|&a, &b| (used[a] - cap.limits[a]).total_cmp(&(used[b] - cap.limits[b])))
        else {
            return true; // all limits hold
        };
        // Cheapest relocation of any task off `worst` to a cluster with room.
        let mut best: Option<(usize, usize, f64)> = None;
        for j in 0..n {
            if assignment.cluster_of[j] != worst {
                continue;
            }
            for (c, &used_c) in used.iter().enumerate() {
                if c == worst || used_c + cap.usage[(c, j)] > cap.limits[c] + 1e-9 {
                    continue;
                }
                let mut trial = assignment.clone();
                trial.cluster_of[j] = c;
                let span = trial.makespan(problem);
                if best.as_ref().is_none_or(|&(_, _, s)| span < s) {
                    best = Some((j, c, span));
                }
            }
        }
        match best {
            Some((j, c, _)) => assignment.cluster_of[j] = c,
            None => return false, // nowhere to move anything
        }
    }
    assignment.capacity_feasible(problem)
}

/// Randomized rounding: samples `trials` assignments from the relaxed
/// per-task distributions, repairs each, and keeps the best feasible one
/// under the declared cost (falling back to repaired argmax when nothing
/// feasible is drawn). Often beats plain argmax rounding when the relaxed
/// optimum splits tasks near-evenly.
pub fn round_randomized(
    problem: &MatchingProblem,
    x: &Matrix,
    cost: CostKind,
    trials: usize,
    rng: &mut impl rand::Rng,
) -> Assignment {
    let m = x.rows();
    let n = x.cols();
    let mut best: Option<(f64, Assignment)> = None;
    let mut consider = |mut asg: Assignment| {
        repair_reliability(problem, &mut asg);
        if !asg.is_feasible(problem) {
            return;
        }
        let c = discrete_cost(problem, &asg, cost);
        if best.as_ref().is_none_or(|(b, _)| c < *b) {
            best = Some((c, asg));
        }
    };
    consider(round_argmax(x));
    for _ in 0..trials {
        let mut cluster_of = Vec::with_capacity(n);
        for j in 0..n {
            let mut draw: f64 = rng.gen_range(0.0..1.0);
            let mut pick = m.saturating_sub(1);
            for i in 0..m {
                if draw < x[(i, j)] {
                    pick = i;
                    break;
                }
                draw -= x[(i, j)];
            }
            cluster_of.push(pick);
        }
        consider(Assignment::new(cluster_of));
    }
    best.map(|(_, a)| a).unwrap_or_else(|| {
        let mut a = round_argmax(x);
        repair_reliability(problem, &mut a);
        a
    })
}

/// The full deployment pipeline: relaxed solve → argmax rounding →
/// reliability repair → local search.
///
/// ```
/// use mfcp_linalg::Matrix;
/// use mfcp_optim::rounding::solve_discrete;
/// use mfcp_optim::{MatchingProblem, RelaxationParams, SolverOptions};
///
/// let times = Matrix::from_rows(&[&[1.0, 3.0], &[3.0, 1.0]]);
/// let rel = Matrix::filled(2, 2, 0.95);
/// let problem = MatchingProblem::new(times, rel, 0.9);
/// let asg = solve_discrete(&problem, &RelaxationParams::default(), &Default::default());
/// assert_eq!(asg.cluster_of, vec![0, 1]); // each task on its fast cluster
/// assert!(asg.is_feasible(&problem));
/// ```
pub fn solve_discrete(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    opts: &SolverOptions,
) -> Assignment {
    let relaxed = solve_relaxed(problem, params, opts);
    let mut assignment = round_argmax(&relaxed.x);
    repair_capacity(problem, &mut assignment);
    repair_reliability(problem, &mut assignment);
    local_search_with_cost(problem, &mut assignment, 20, params.cost);
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_problem(seed: u64, m: usize, n: usize, gamma: f64) -> MatchingProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..3.0));
        let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.7..1.0));
        MatchingProblem::new(t, a, gamma)
    }

    #[test]
    fn round_picks_argmax() {
        let x = Matrix::from_rows(&[&[0.7, 0.2], &[0.3, 0.8]]);
        let a = round_argmax(&x);
        assert_eq!(a.cluster_of, vec![0, 1]);
    }

    #[test]
    fn repair_achieves_feasibility_when_possible() {
        // Cluster 1 is perfectly reliable, so feasibility is achievable.
        let t = Matrix::from_rows(&[&[1.0, 1.0, 1.0], &[2.0, 2.0, 2.0]]);
        let a = Matrix::from_rows(&[&[0.5, 0.5, 0.5], &[1.0, 1.0, 1.0]]);
        let problem = MatchingProblem::new(t, a, 0.9);
        let mut asg = Assignment::new(vec![0, 0, 0]); // mean rel 0.5, infeasible
        assert!(!asg.is_feasible(&problem));
        assert!(repair_reliability(&problem, &mut asg));
        assert!(asg.is_feasible(&problem));
    }

    #[test]
    fn repair_reports_impossible() {
        // No cluster can reach gamma.
        let t = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let a = Matrix::from_rows(&[&[0.5], &[0.6]]);
        let problem = MatchingProblem::new(t, a, 0.95);
        let mut asg = Assignment::new(vec![0]);
        assert!(!repair_reliability(&problem, &mut asg));
        // It should still have moved to the best available cluster.
        assert_eq!(asg.cluster_of, vec![1]);
    }

    #[test]
    fn local_search_fixes_obvious_imbalance() {
        // All four unit tasks on one of two identical clusters: local
        // search must rebalance to makespan 2.
        let t = Matrix::filled(2, 4, 1.0);
        let a = Matrix::filled(2, 4, 1.0);
        let problem = MatchingProblem::new(t, a, 0.5);
        let mut asg = Assignment::new(vec![0, 0, 0, 0]);
        assert_eq!(asg.makespan(&problem), 4.0);
        local_search(&problem, &mut asg, 20);
        assert_eq!(asg.makespan(&problem), 2.0);
    }

    #[test]
    fn local_search_never_worsens() {
        for seed in 0..10 {
            let problem = random_problem(seed, 3, 8, 0.75);
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let mut asg = Assignment::new((0..8).map(|_| rng.gen_range(0..3)).collect());
            let before = asg.makespan(&problem);
            let feasible_before = asg.is_feasible(&problem);
            local_search(&problem, &mut asg, 10);
            assert!(asg.makespan(&problem) <= before + 1e-12);
            if feasible_before {
                assert!(asg.is_feasible(&problem), "feasibility must be preserved");
            }
        }
    }

    #[test]
    fn repair_capacity_resolves_overloads() {
        use crate::problem::CapacityConstraint;
        let t = Matrix::filled(2, 4, 1.0);
        let a = Matrix::filled(2, 4, 0.95);
        let usage = Matrix::filled(2, 4, 1.0);
        let problem = MatchingProblem::new(t, a, 0.0)
            .with_capacity(CapacityConstraint::new(usage, vec![2.0, 4.0]));
        let mut asg = Assignment::new(vec![0, 0, 0, 0]); // 4 units on a 2-unit cluster
        assert!(!asg.capacity_feasible(&problem));
        assert!(repair_capacity(&problem, &mut asg));
        assert!(asg.capacity_feasible(&problem));

        // Impossible case: total usage exceeds total capacity.
        let problem2 =
            MatchingProblem::new(Matrix::filled(2, 4, 1.0), Matrix::filled(2, 4, 0.95), 0.0)
                .with_capacity(CapacityConstraint::new(
                    Matrix::filled(2, 4, 1.0),
                    vec![1.0, 1.0],
                ));
        let mut asg2 = Assignment::new(vec![0, 0, 1, 1]);
        assert!(!repair_capacity(&problem2, &mut asg2));
    }

    #[test]
    fn randomized_rounding_at_least_as_good_as_argmax() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        for seed in 0..8 {
            let problem = random_problem(seed, 3, 6, 0.75);
            let params = RelaxationParams::default();
            let relaxed =
                crate::solver::solve_relaxed(&problem, &params, &SolverOptions::default());
            let mut argmax = round_argmax(&relaxed.x);
            repair_reliability(&problem, &mut argmax);
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let randomized = round_randomized(
                &problem,
                &relaxed.x,
                crate::objective::CostKind::SmoothMax,
                32,
                &mut rng,
            );
            if argmax.is_feasible(&problem) {
                assert!(
                    randomized.makespan(&problem) <= argmax.makespan(&problem) + 1e-12,
                    "seed {seed}: randomized {} vs argmax {}",
                    randomized.makespan(&problem),
                    argmax.makespan(&problem)
                );
            }
            assert_eq!(randomized.tasks(), 6);
        }
    }

    #[test]
    fn randomized_rounding_deterministic_under_seed() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let problem = random_problem(3, 3, 5, 0.75);
        let params = RelaxationParams::default();
        let relaxed = crate::solver::solve_relaxed(&problem, &params, &SolverOptions::default());
        let a = round_randomized(
            &problem,
            &relaxed.x,
            crate::objective::CostKind::SmoothMax,
            16,
            &mut StdRng::seed_from_u64(5),
        );
        let b = round_randomized(
            &problem,
            &relaxed.x,
            crate::objective::CostKind::SmoothMax,
            16,
            &mut StdRng::seed_from_u64(5),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn linear_cost_pipeline_collapses_onto_fast_clusters() {
        // With the linear-sum objective, the pipeline sends each task to
        // its (reliability-feasible) fastest cluster and the local search
        // cannot rebalance — the utilization failure Table 1 row (1)
        // demonstrates.
        let t = Matrix::from_rows(&[&[1.0, 1.0, 1.0, 1.0], &[1.3, 1.3, 1.3, 1.3]]);
        let a = Matrix::filled(2, 4, 0.95);
        let problem = MatchingProblem::new(t, a, 0.5);
        let params = RelaxationParams {
            cost: CostKind::LinearSum,
            rho: 0.001,
            ..Default::default()
        };
        let asg = solve_discrete(&problem, &params, &SolverOptions::default());
        assert_eq!(asg.cluster_of, vec![0; 4], "all tasks on the fast cluster");
        // The default (smooth-max) pipeline balances instead.
        let balanced = solve_discrete(
            &problem,
            &RelaxationParams::default(),
            &SolverOptions::default(),
        );
        assert!(balanced.loads(2)[1] > 0, "makespan pipeline spreads load");
    }

    #[test]
    fn solve_discrete_end_to_end() {
        let problem = random_problem(42, 3, 6, 0.75);
        let asg = solve_discrete(
            &problem,
            &RelaxationParams::default(),
            &SolverOptions::default(),
        );
        assert_eq!(asg.tasks(), 6);
        assert!(asg.is_feasible(&problem));
        // Must beat the trivial all-on-one-cluster matching.
        let naive = Assignment::new(vec![0; 6]);
        assert!(asg.makespan(&problem) <= naive.makespan(&problem));
    }
}
