//! Learned dual predictions with instance-robust feasibility repair.
//!
//! The warm-start cache ([`crate::cache`]) replays previous optima for
//! *structurally identical* problems; this module generalizes the idea
//! to *unseen* instances, following Dinitz et al. 2021 ("Faster
//! Matchings via Learned Duals") and Lavastida et al. 2021 ("Learnable
//! and Instance-Robust Predictions for Online Matching, Flows and Load
//! Balancing"): learn a map from structure-only problem features to the
//! per-task simplex duals and the relaxed assignment, repair any
//! infeasibility in the prediction, and seed the solver ladder from the
//! repaired point. A good prediction lands inside the basin of the new
//! optimum and converges in a fraction of the cold iterations; a bad
//! prediction is either rejected by [`repair`] before any solver work,
//! or costs exactly one failed ladder rung before the cold path runs.
//!
//! The pieces:
//!
//! * [`features`] — per-column feature extraction. Deliberately the same
//!   *structural* family as [`crate::cache::fingerprint`] (shape, γ,
//!   speedup/capacity statistics) plus the normalized time/reliability
//!   columns; nothing time-dependent or nondeterministic.
//! * [`DualPrediction`] / [`DualPredictor`] — the raw model output (a
//!   relaxed assignment plus per-column duals) and the trait the solver
//!   consumes. Predictors return *raw* output; the solver repairs it, so
//!   tests can drive the ladder with adversarial mock predictors.
//! * [`repair`] — the instance-robust feasibility repair: reject wrong
//!   shapes and non-finite or out-of-scale duals outright
//!   ([`RepairError`]), clamp duals to [`DUAL_ABS_BOUND`], and project
//!   each primal column onto the simplex. Columns already on the simplex
//!   (within `1e-12`) are passed through untouched, which makes repair
//!   idempotent and bitwise-identity on feasible seeds.
//! * [`LearnedDualHead`] — an [`mfcp_nn::DualHead`] regression model
//!   over the features, trained online from the duals of measured solves
//!   ([`LearnedDualHead::observe`]) and served through [`DualPredictor`]
//!   once enough observations have accumulated.
//!
//! Fallback semantics are owned by [`crate::recovery::RobustSolver`]:
//! exact cache hits beat predictions, predictions beat cold starts, and
//! a failed predicted rung falls through the existing ladder with a
//! typed [`crate::recovery::PredictionOutcome`] in the diagnostics.

use std::fmt;

use crate::objective::{self, RelaxationParams};
use crate::problem::MatchingProblem;
use crate::solver::project_simplex_with;
use mfcp_linalg::Matrix;
use mfcp_nn::DualHead;

/// Largest admissible dual magnitude.
///
/// Duals of the entropic relaxation are gradient column-minima; on every
/// workload the platform generates they are `O(1)`–`O(10)`. Anything
/// beyond this bound is a corrupted or wildly out-of-distribution
/// prediction (e.g. the ×1e6-scaled adversarial case), and seeding from
/// it would waste the predicted rung — reject instead. Shared with
/// [`crate::cache::WarmStartCache`] lookup validation so cached and
/// predicted duals pass the same sanity gate.
pub const DUAL_ABS_BOUND: f64 = 1e3;

/// Tolerance under which a primal column counts as already feasible and
/// repair passes it through bit-for-bit (see [`repair`]).
pub const FEASIBLE_TOL: f64 = 1e-12;

/// Number of per-column feature slots that do not scale with `m` (see
/// [`features`]).
pub const GLOBAL_FEATURES: usize = 8;

/// Interior blend for predicted seeds (see [`predicted_init`]).
///
/// Much larger than the cache's `1e-9` blend, deliberately. A cached
/// warm start is a true optimum of a sibling instance: its small
/// coordinates are small in the *right* places, so the blend only needs
/// to lift exact zeros out of the mirror-descent fixed point. A learned
/// prediction's small coordinates are wrong at the model's error scale
/// (~1e-2): the simplex projection routinely lands columns *on the
/// boundary*, and multiplicative updates grow a coordinate from `1e-9`
/// about three times slower than from `1e-3` (measured: a predicted
/// seed 20× closer than uniform converged no faster than cold under the
/// `1e-9` blend). `1e-3` floors every coordinate at `τ/m` — negligible
/// perturbation next to the prediction error, decisive for recovery
/// speed.
pub const PREDICTED_BLEND: f64 = 1e-3;

/// Interior blend for predicted seeds: `(1 − τ)·x + τ·uniform` with
/// `τ =` [`PREDICTED_BLEND`], the learned-path analogue of
/// [`crate::cache::warm_init`]. Keeps every coordinate at least `τ/m`
/// so mirror descent can cheaply move mass the prediction misplaced,
/// and keeps columns exactly stochastic.
pub fn predicted_init(x: &Matrix) -> Matrix {
    let (m, n) = x.shape();
    let u = 1.0 / m.max(1) as f64;
    Matrix::from_fn(m, n, |i, j| {
        (1.0 - PREDICTED_BLEND) * x[(i, j)] + PREDICTED_BLEND * u
    })
}

/// Feature dimension for an `m`-cluster problem: the normalized time
/// column, the reliability column, and [`GLOBAL_FEATURES`] structural
/// scalars.
pub fn feature_dim(m: usize) -> usize {
    2 * m + GLOBAL_FEATURES
}

/// Structure-only features for every task column of `problem`, one row
/// per column (`n × feature_dim(m)`).
///
/// Per column `j`: the execution-time column normalized by its mean
/// (scale-free), the raw reliability column, then the structural
/// scalars — γ, ρ, β/10, λ, `ln(1+n)/4`, `ln(1+mean_j)` (the time
/// scale), the fraction of trivial speedup curves, and a capacity
/// statistic (`0` without constraints, else `1/(1+mean limit)`). All
/// deterministic and finite for any valid problem.
pub fn features(problem: &MatchingProblem, params: &RelaxationParams) -> Matrix {
    let (m, n) = (problem.clusters(), problem.tasks());
    let trivial = if m == 0 {
        1.0
    } else {
        problem.speedup.iter().filter(|c| c.is_trivial()).count() as f64 / m as f64
    };
    let cap_stat = match &problem.capacity {
        None => 0.0,
        Some(cap) => {
            let mean = cap.limits.iter().sum::<f64>() / cap.limits.len().max(1) as f64;
            1.0 / (1.0 + mean)
        }
    };
    let mut col_mean = vec![0.0; n];
    for (j, mean) in col_mean.iter_mut().enumerate() {
        let sum: f64 = (0..m).map(|i| problem.times[(i, j)]).sum();
        *mean = (sum / m.max(1) as f64).max(1e-12);
    }
    Matrix::from_fn(n, feature_dim(m), |j, k| {
        if k < m {
            problem.times[(k, j)] / col_mean[j]
        } else if k < 2 * m {
            problem.reliability[(k - m, j)]
        } else {
            match k - 2 * m {
                0 => problem.gamma,
                1 => params.rho,
                2 => params.beta / 10.0,
                3 => params.lambda,
                4 => (1.0 + n as f64).ln() / 4.0,
                5 => (1.0 + col_mean[j]).ln(),
                6 => trivial,
                _ => cap_stat,
            }
        }
    })
}

/// Regression targets for training a dual head from a solved optimum:
/// one row per task column, holding the column of `x` followed by its
/// dual (`n × (m+1)`).
pub fn targets(x: &Matrix, duals: &[f64]) -> Matrix {
    let (m, n) = x.shape();
    assert_eq!(duals.len(), n, "one dual per task column");
    Matrix::from_fn(n, m + 1, |j, k| if k < m { x[(k, j)] } else { duals[j] })
}

/// Per-task simplex duals `ν_j = min_i ∂F/∂x_ij` of `problem` at `x`.
///
/// At an interior optimum of the entropic relaxation the gradient is
/// constant across the support of each column, so the column minimum
/// recovers the stationarity multiplier of the simplex constraint (the
/// same estimate [`crate::cache::WarmStartEntry::from_solution`]
/// stores).
pub fn column_duals(problem: &MatchingProblem, params: &RelaxationParams, x: &Matrix) -> Vec<f64> {
    let (m, n) = (problem.clusters(), problem.tasks());
    let grad = objective::grad_x(problem, params, x);
    (0..n)
        .map(|j| (0..m).map(|i| grad[(i, j)]).fold(f64::INFINITY, f64::min))
        .collect()
}

/// Whether `duals` is an admissible dual vector for an `n`-column
/// problem: correct length, every entry finite, and every magnitude
/// within [`DUAL_ABS_BOUND`]. Used both by [`repair`] and by the
/// warm-start cache's lookup validation.
pub fn duals_admissible(duals: &[f64], n: usize) -> bool {
    duals.len() == n
        && duals
            .iter()
            .all(|d| d.is_finite() && d.abs() <= DUAL_ABS_BOUND)
}

/// A predicted solver state: a relaxed assignment seed (`m × n`,
/// columns ideally on the simplex) plus per-task duals (length `n`).
#[derive(Debug, Clone, PartialEq)]
pub struct DualPrediction {
    /// Predicted relaxed assignment (primal seed).
    pub x: Matrix,
    /// Predicted per-task simplex duals.
    pub duals: Vec<f64>,
}

/// Why [`repair`] rejected a prediction outright (as opposed to fixing
/// it up). Carried into the solve diagnostics as the typed recovery
/// event for a bad prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairError {
    /// The primal seed has the wrong shape for the problem.
    PrimalShape,
    /// The dual vector length does not match the task count.
    DualCount,
    /// The primal seed contains NaN or infinite entries.
    NonFinitePrimal,
    /// The dual vector contains NaN or infinite entries.
    NonFiniteDual,
    /// A dual magnitude exceeds [`DUAL_ABS_BOUND`] — an out-of-scale
    /// (e.g. ×1e6) prediction.
    DualOutOfScale,
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RepairError::PrimalShape => "predicted assignment has the wrong shape",
            RepairError::DualCount => "predicted dual count does not match the task count",
            RepairError::NonFinitePrimal => "predicted assignment contains non-finite entries",
            RepairError::NonFiniteDual => "predicted duals contain non-finite entries",
            RepairError::DualOutOfScale => "predicted dual magnitude exceeds the sanity bound",
        })
    }
}

impl std::error::Error for RepairError {}

/// Whether column `j` of `x` is already on the simplex within
/// [`FEASIBLE_TOL`]: all entries non-negative and the column sum within
/// the tolerance of one.
fn column_feasible(x: &Matrix, j: usize) -> bool {
    let mut sum = 0.0;
    for i in 0..x.rows() {
        let v = x[(i, j)];
        if v < 0.0 {
            return false;
        }
        sum += v;
    }
    (sum - 1.0).abs() <= FEASIBLE_TOL
}

/// Feasibility-repairs a raw prediction for an `m × n` problem.
///
/// Rejection (the prediction is unusable, [`RepairError`]): wrong primal
/// shape or dual count, non-finite entries anywhere, or a dual magnitude
/// beyond [`DUAL_ABS_BOUND`].
///
/// Repair (the prediction is usable after fix-up): every primal column
/// not already on the simplex (within [`FEASIBLE_TOL`]) is replaced by
/// its Euclidean simplex projection
/// ([`project_simplex_with`][crate::solver::project_simplex_with]), and
/// duals are clamped to the bound (a no-op after the scale check — kept
/// as defense in depth).
///
/// Columns that are already feasible are passed through bit-for-bit, so
/// repair is idempotent and repairing an already-feasible seed returns
/// it unchanged.
pub fn repair(pred: &DualPrediction, m: usize, n: usize) -> Result<DualPrediction, RepairError> {
    if pred.x.shape() != (m, n) {
        return Err(RepairError::PrimalShape);
    }
    if pred.duals.len() != n {
        return Err(RepairError::DualCount);
    }
    if !pred.x.as_slice().iter().all(|v| v.is_finite()) {
        return Err(RepairError::NonFinitePrimal);
    }
    if !pred.duals.iter().all(|d| d.is_finite()) {
        return Err(RepairError::NonFiniteDual);
    }
    if pred.duals.iter().any(|d| d.abs() > DUAL_ABS_BOUND) {
        return Err(RepairError::DualOutOfScale);
    }
    let mut x = pred.x.clone();
    let mut col = vec![0.0; m];
    let mut scratch = Vec::with_capacity(m);
    for j in 0..n {
        if column_feasible(&x, j) {
            continue;
        }
        for (i, slot) in col.iter_mut().enumerate() {
            *slot = x[(i, j)];
        }
        project_simplex_with(&mut col, &mut scratch);
        for (i, &v) in col.iter().enumerate() {
            x[(i, j)] = v;
        }
    }
    let duals = pred
        .duals
        .iter()
        .map(|d| d.clamp(-DUAL_ABS_BOUND, DUAL_ABS_BOUND))
        .collect();
    Ok(DualPrediction { x, duals })
}

/// A source of raw dual/primal predictions for unseen instances.
///
/// Implementations return their *unrepaired* output (or `None` when
/// they cannot predict for this problem shape); the consumer runs
/// [`repair`] and owns the fallback semantics. This split lets the
/// differential tests drive [`crate::RobustSolver`] with adversarial
/// mock predictors.
pub trait DualPredictor {
    /// Predicts solver state for `problem`, or `None` if this predictor
    /// cannot cover the instance (wrong shape family, not trained yet).
    fn predict_duals(
        &self,
        problem: &MatchingProblem,
        params: &RelaxationParams,
    ) -> Option<DualPrediction>;
}

/// Default number of observed solves before a [`LearnedDualHead`] starts
/// serving predictions.
const DEFAULT_MIN_OBSERVATIONS: u64 = 8;

/// Hidden width of the default head architecture.
const HIDDEN_WIDTH: usize = 32;

/// Adam learning rate for online head training.
const HEAD_LR: f64 = 5e-3;

/// A learned dual predictor for `m`-cluster problems: an
/// [`mfcp_nn::DualHead`] regression model mapping [`features`] rows to
/// per-column `(x_col, dual)` targets, trained online from the duals of
/// measured solves.
///
/// The head is column-wise, so one model covers any task count `n`; the
/// cluster count `m` is fixed at construction (it sets the feature and
/// target dimensions). Until [`LearnedDualHead::ready`] — fewer than
/// `min_observations` successful updates — the predictor abstains
/// (`predict_duals` returns `None`) rather than serve noise.
#[derive(Debug, Clone)]
pub struct LearnedDualHead {
    head: DualHead,
    m: usize,
    min_observations: u64,
    observations: u64,
}

impl LearnedDualHead {
    /// A fresh head for `m`-cluster problems, deterministically
    /// initialized from `seed`.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(m: usize, seed: u64) -> Self {
        assert!(m > 0, "need at least one cluster");
        LearnedDualHead {
            head: DualHead::new(feature_dim(m), m + 1, &[HIDDEN_WIDTH], HEAD_LR, seed),
            m,
            min_observations: DEFAULT_MIN_OBSERVATIONS,
            observations: 0,
        }
    }

    /// Overrides the readiness threshold (number of observed solves
    /// before predictions are served).
    pub fn with_min_observations(mut self, min_observations: u64) -> Self {
        self.min_observations = min_observations;
        self
    }

    /// Cluster count this head was built for.
    pub fn clusters(&self) -> usize {
        self.m
    }

    /// Number of successful training observations so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Whether the head has seen enough solves to serve predictions.
    pub fn ready(&self) -> bool {
        self.observations >= self.min_observations
    }

    /// Trains on one measured solve: extracts duals from the optimum
    /// `x_star` of `problem`, and takes one gradient step toward
    /// predicting `(x_star, duals)` from the problem features. Returns
    /// the pre-step loss, or `None` if the observation was rejected
    /// (shape mismatch, empty problem, or inadmissible duals — e.g. a
    /// degenerate solve whose gradient blew up) — rejected observations
    /// leave the model untouched.
    pub fn observe(
        &mut self,
        problem: &MatchingProblem,
        params: &RelaxationParams,
        x_star: &Matrix,
    ) -> Option<f64> {
        let (m, n) = (problem.clusters(), problem.tasks());
        if m != self.m || n == 0 || x_star.shape() != (m, n) {
            mfcp_obs::counter("optim.learned.observe_rejected").inc();
            return None;
        }
        if !x_star.as_slice().iter().all(|v| v.is_finite()) {
            mfcp_obs::counter("optim.learned.observe_rejected").inc();
            return None;
        }
        let duals = column_duals(problem, params, x_star);
        if !duals_admissible(&duals, n) {
            mfcp_obs::counter("optim.learned.observe_rejected").inc();
            return None;
        }
        let loss = self
            .head
            .fit_step(&features(problem, params), &targets(x_star, &duals));
        match loss {
            Some(l) => {
                self.observations += 1;
                mfcp_obs::counter("optim.learned.observed").inc();
                mfcp_obs::histogram("optim.learned.fit_loss").record(l);
                Some(l)
            }
            None => {
                mfcp_obs::counter("optim.learned.observe_rejected").inc();
                None
            }
        }
    }
}

impl DualPredictor for LearnedDualHead {
    fn predict_duals(
        &self,
        problem: &MatchingProblem,
        params: &RelaxationParams,
    ) -> Option<DualPrediction> {
        let (m, n) = (problem.clusters(), problem.tasks());
        if m != self.m || n == 0 || !self.ready() {
            return None;
        }
        let out = self.head.predict(&features(problem, params));
        let x = Matrix::from_fn(m, n, |i, j| out[(j, i)]);
        let duals = (0..n).map(|j| out[(j, m)]).collect();
        Some(DualPrediction { x, duals })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::is_column_stochastic;

    fn problem(m: usize, n: usize) -> MatchingProblem {
        let t = Matrix::from_fn(m, n, |i, j| 1.0 + 0.3 * i as f64 + 0.1 * j as f64);
        let a = Matrix::from_fn(m, n, |i, j| 0.8 + 0.02 * ((i + j) % 10) as f64);
        MatchingProblem::new(t, a, 0.6)
    }

    fn bits(x: &Matrix) -> Vec<u64> {
        x.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn features_are_deterministic_finite_and_shaped() {
        let p = problem(3, 5);
        let params = RelaxationParams::default();
        let f = features(&p, &params);
        assert_eq!(f.shape(), (5, feature_dim(3)));
        assert!(f.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(f, features(&p, &params));
        // Structure-only: scaling one time entry moves only that column's
        // time features, never produces non-finite values.
        let p2 = p.with_time_row(0, &[9.0, 9.0, 9.0, 9.0, 9.0]);
        assert!(features(&p2, &params)
            .as_slice()
            .iter()
            .all(|v| v.is_finite()));
    }

    #[test]
    fn repair_of_feasible_seed_is_bitwise_identity() {
        // Dyadic entries: every column sums to exactly 1.0.
        let x = Matrix::from_rows(&[&[0.25, 0.5, 1.0], &[0.75, 0.5, 0.0]]);
        let pred = DualPrediction {
            x: x.clone(),
            duals: vec![0.5, -1.25, 3.0],
        };
        let fixed = repair(&pred, 2, 3).expect("feasible seed accepted");
        assert_eq!(bits(&fixed.x), bits(&x));
        assert_eq!(
            fixed.duals.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
            pred.duals.iter().map(|d| d.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn repair_projects_onto_simplex_to_1e12() {
        let x = Matrix::from_rows(&[
            &[1.7, -0.3, 100.0, 0.0],
            &[-0.4, 0.9, -50.0, 0.0],
            &[0.2, 0.8, 2.0, 0.0],
        ]);
        let pred = DualPrediction {
            x,
            duals: vec![0.0; 4],
        };
        let fixed = repair(&pred, 3, 4).expect("finite seed accepted");
        assert!(is_column_stochastic(&fixed.x, 1e-12));
        assert!(fixed.x.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn repair_is_idempotent() {
        let x = Matrix::from_rows(&[&[2.0, -1.0, 0.3], &[0.5, 0.5, 0.3], &[-0.1, 1.2, 0.3]]);
        let pred = DualPrediction {
            x,
            duals: vec![999.0, -999.0, 0.125],
        };
        let once = repair(&pred, 3, 3).expect("repairable");
        let twice = repair(&once, 3, 3).expect("repaired output is admissible");
        assert_eq!(bits(&twice.x), bits(&once.x));
        assert_eq!(
            twice.duals.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
            once.duals.iter().map(|d| d.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn repair_rejects_adversarial_predictions() {
        let good = Matrix::filled(2, 3, 0.5);
        // NaN dual.
        let p = DualPrediction {
            x: good.clone(),
            duals: vec![0.0, f64::NAN, 0.0],
        };
        assert_eq!(repair(&p, 2, 3), Err(RepairError::NonFiniteDual));
        // Infinite dual.
        let p = DualPrediction {
            x: good.clone(),
            duals: vec![f64::INFINITY, 0.0, 0.0],
        };
        assert_eq!(repair(&p, 2, 3), Err(RepairError::NonFiniteDual));
        // Out-of-scale (×1e6) duals.
        let p = DualPrediction {
            x: good.clone(),
            duals: vec![1.5e6, -2.0e6, 0.0],
        };
        assert_eq!(repair(&p, 2, 3), Err(RepairError::DualOutOfScale));
        // Wrong-shape primal.
        let p = DualPrediction {
            x: Matrix::filled(3, 3, 1.0 / 3.0),
            duals: vec![0.0; 3],
        };
        assert_eq!(repair(&p, 2, 3), Err(RepairError::PrimalShape));
        // Wrong dual count.
        let p = DualPrediction {
            x: good.clone(),
            duals: vec![0.0; 2],
        };
        assert_eq!(repair(&p, 2, 3), Err(RepairError::DualCount));
        // NaN primal.
        let mut x = good.clone();
        x[(0, 0)] = f64::NAN;
        let p = DualPrediction {
            x,
            duals: vec![0.0; 3],
        };
        assert_eq!(repair(&p, 2, 3), Err(RepairError::NonFinitePrimal));
    }

    #[test]
    fn duals_admissible_matches_repair_gate() {
        assert!(duals_admissible(&[0.0, -DUAL_ABS_BOUND, DUAL_ABS_BOUND], 3));
        assert!(!duals_admissible(&[0.0, 0.0], 3), "wrong length");
        assert!(!duals_admissible(&[f64::NAN, 0.0, 0.0], 3));
        assert!(!duals_admissible(&[1e6, 0.0, 0.0], 3));
    }

    #[test]
    fn head_abstains_until_ready_then_predicts_shapes() {
        let params = RelaxationParams::default();
        let p = problem(3, 4);
        let mut head = LearnedDualHead::new(3, 17).with_min_observations(2);
        assert!(head.predict_duals(&p, &params).is_none(), "untrained");
        let x = crate::solver::uniform_init(3, 4);
        assert!(head.observe(&p, &params, &x).is_some());
        assert!(head.predict_duals(&p, &params).is_none(), "one short");
        assert!(head.observe(&p, &params, &x).is_some());
        assert!(head.ready());
        let pred = head
            .predict_duals(&p, &params)
            .expect("ready head predicts");
        assert_eq!(pred.x.shape(), (3, 4));
        assert_eq!(pred.duals.len(), 4);
        // Different task count, same model.
        let p7 = problem(3, 7);
        assert!(head.predict_duals(&p7, &params).is_some());
        // Wrong cluster count: abstain.
        assert!(head.predict_duals(&problem(4, 4), &params).is_none());
    }

    #[test]
    fn observe_rejects_mismatched_or_poisoned_solutions() {
        let params = RelaxationParams::default();
        let p = problem(2, 3);
        let mut head = LearnedDualHead::new(2, 1);
        // Wrong cluster count.
        assert!(head
            .observe(&problem(3, 3), &params, &crate::solver::uniform_init(3, 3))
            .is_none());
        // Wrong solution shape.
        assert!(head
            .observe(&p, &params, &crate::solver::uniform_init(2, 4))
            .is_none());
        // Non-finite solution.
        let mut x = crate::solver::uniform_init(2, 3);
        x[(0, 0)] = f64::NAN;
        assert!(head.observe(&p, &params, &x).is_none());
        assert_eq!(head.observations(), 0);
    }

    #[test]
    fn head_learns_the_uniform_family() {
        // Observing a family with near-identical optima must drive the
        // prediction toward those optima (sanity that gradients flow end
        // to end through features → targets).
        let params = RelaxationParams::default();
        let mut head = LearnedDualHead::new(2, 5).with_min_observations(1);
        let p = problem(2, 3);
        let x = crate::solver::uniform_init(2, 3);
        let first = head.observe(&p, &params, &x).expect("clean observation");
        let mut last = first;
        for _ in 0..200 {
            last = head.observe(&p, &params, &x).expect("clean observation");
        }
        assert!(last < first * 0.5, "loss did not drop: {first} -> {last}");
        let pred = head.predict_duals(&p, &params).expect("ready");
        let fixed = repair(&pred, 2, 3).expect("trained prediction repairable");
        for (a, b) in fixed.x.as_slice().iter().zip(x.as_slice()) {
            assert!(
                (a - b).abs() < 0.2,
                "prediction far from target: {a} vs {b}"
            );
        }
    }
}
