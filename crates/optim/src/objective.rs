//! The continuous relaxed objective `F(X, T, A)` (paper Eq. 8–10, 17).
//!
//! For a relaxed matching `X` (columns on the probability simplex), with
//! per-cluster fractional load `n_i = xᵢᵀ1` and weighted time
//! `ℓ_i = xᵢᵀtᵢ`, the smoothed makespan is
//!
//! ```text
//! f̃(X, T) = (1/β) · log Σ_i exp(β · ζ_i(n_i) · ℓ_i)        (Eq. 8 / 17)
//! ```
//!
//! and the full training objective adds the reliability barrier and an
//! entropy regularizer:
//!
//! ```text
//! F(X, T, A) = f̃(X, T) + φ_λ(g(X, A)) + ρ · Σ_ij x_ij log x_ij
//! ```
//!
//! where `g(X, A) = (1/N) Σ_ij x_ij a_ij − γ` is the reliability slack.
//!
//! Two deliberate deviations from the paper's notation, both recorded in
//! DESIGN.md:
//!
//! 1. The paper normalizes `g` by `1/(MN)`; we use `1/N` so that `g` is
//!    the mean per-task success probability minus `γ`, matching both the
//!    paper's *evaluation* metric ("average success probability of task
//!    execution") and its threshold values (γ ≈ 0.85). With `1/(MN)` the
//!    stated thresholds would be unsatisfiable for `M > 1`.
//! 2. The entropy term (weight `ρ`) is not in the paper's equations but is
//!    the standard decision-focused-learning device for making the relaxed
//!    argmin unique, interior, and stably differentiable; with `ρ = 0` the
//!    smoothed LP's optimum sits on a face of the simplex where the KKT
//!    Jacobian is singular. Set `rho = 0.0` to recover the paper's exact
//!    objective for forward solves.

use crate::problem::MatchingProblem;
use mfcp_linalg::{vector, Matrix};

/// Smallest admissible entry when evaluating `x log x` and barrier logs.
pub(crate) const X_FLOOR: f64 = 1e-12;

/// How the reliability constraint enters the objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BarrierKind {
    /// Logarithmic interior-point barrier `−λ log g` (Eq. 9), extended
    /// linearly (C¹) below `eps` so iterates that stray infeasible get a
    /// steep-but-finite restoring gradient.
    Log {
        /// Slack below which the linear extension takes over.
        eps: f64,
    },
    /// Hard hinge penalty `λ · max(0, −g)` — the Table 1 row (2) ablation.
    HardPenalty,
    /// No reliability term (unconstrained; used by tests and TAM).
    None,
}

impl BarrierKind {
    /// The default log barrier.
    pub fn log() -> Self {
        BarrierKind::Log { eps: 1e-3 }
    }
}

/// Shape of the time-cost term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostKind {
    /// Smoothed makespan (log-sum-exp of cluster times) — the paper's
    /// objective.
    SmoothMax,
    /// Sum of cluster times — the Table 1 row (1) ablation ("Maximum
    /// Loss" replaced by a linear function).
    LinearSum,
}

/// Hyper-parameters of the relaxation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelaxationParams {
    /// Smooth-max temperature `β` (larger → closer to the true max).
    pub beta: f64,
    /// Barrier weight `λ`.
    pub lambda: f64,
    /// Entropy-regularizer weight `ρ` (see module docs).
    pub rho: f64,
    /// Reliability-term form.
    pub barrier: BarrierKind,
    /// Time-cost form.
    pub cost: CostKind,
}

impl Default for RelaxationParams {
    fn default() -> Self {
        RelaxationParams {
            beta: 5.0,
            lambda: 0.05,
            rho: 0.01,
            barrier: BarrierKind::log(),
            cost: CostKind::SmoothMax,
        }
    }
}

/// Per-cluster quantities of a relaxed matching, shared by the value,
/// gradient and Hessian computations.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Fractional load `n_i = xᵢᵀ1`.
    pub count: Vec<f64>,
    /// Weighted time `ℓ_i = xᵢᵀtᵢ`.
    pub load: Vec<f64>,
    /// Adjusted time `s_i = ζ_i(n_i)·ℓ_i`.
    pub adjusted: Vec<f64>,
    /// Softmax weights `w_i ∝ exp(β s_i)` (uniform for `CostKind::LinearSum`).
    pub weights: Vec<f64>,
}

/// Computes the per-cluster statistics of `x` under `problem`/`params`.
pub fn cluster_stats(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    x: &Matrix,
) -> ClusterStats {
    let mut stats = ClusterStats::default();
    cluster_stats_into(problem, params, x, &mut stats);
    stats
}

/// Computes the per-cluster statistics of `x` into caller-owned storage.
/// Performs no heap allocation once `stats` has grown to `M` entries.
pub fn cluster_stats_into(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    x: &Matrix,
    stats: &mut ClusterStats,
) {
    let m = problem.clusters();
    debug_assert_eq!(x.shape(), problem.times.shape());
    let ClusterStats {
        count,
        load,
        adjusted,
        weights,
    } = stats;
    count.clear();
    count.resize(m, 0.0);
    load.clear();
    load.resize(m, 0.0);
    for i in 0..m {
        let xi = x.row(i);
        count[i] = xi.iter().sum();
        load[i] = vector::dot(xi, problem.times.row(i));
    }
    adjusted.clear();
    adjusted.extend((0..m).map(|i| problem.speedup[i].eval(count[i]) * load[i]));
    match params.cost {
        CostKind::SmoothMax => {
            weights.clear();
            weights.extend(adjusted.iter().map(|&s| params.beta * s));
            vector::softmax_inplace(weights);
        }
        CostKind::LinearSum => {
            weights.clear();
            weights.resize(m, 1.0);
        }
    }
}

/// The smoothed time cost `f̃(X, T)` (Eq. 8/17) or its linear ablation.
pub fn smooth_cost(problem: &MatchingProblem, params: &RelaxationParams, x: &Matrix) -> f64 {
    let stats = cluster_stats(problem, params, x);
    match params.cost {
        CostKind::SmoothMax => {
            let scaled: Vec<f64> = stats.adjusted.iter().map(|&s| params.beta * s).collect();
            vector::logsumexp(&scaled) / params.beta
        }
        CostKind::LinearSum => stats.adjusted.iter().sum(),
    }
}

/// The *true* (non-smoothed) relaxed cost `max_i ζ_i(n_i)·ℓ_i`.
pub fn true_cost(problem: &MatchingProblem, x: &Matrix) -> f64 {
    let params = RelaxationParams::default();
    cluster_stats(problem, &params, x)
        .adjusted
        .into_iter()
        .fold(0.0, f64::max)
}

/// Reliability slack `g(X, A) = (1/N) Σ_ij x_ij a_ij − γ`.
pub fn reliability_slack(problem: &MatchingProblem, x: &Matrix) -> f64 {
    let n = problem.tasks();
    if n == 0 {
        return 1.0 - problem.gamma;
    }
    let mut acc = 0.0;
    for i in 0..problem.clusters() {
        acc += vector::dot(x.row(i), problem.reliability.row(i));
    }
    acc / n as f64 - problem.gamma
}

/// Barrier value `φ_λ(g)`.
pub fn barrier_value(params: &RelaxationParams, g: f64) -> f64 {
    match params.barrier {
        BarrierKind::Log { eps } => {
            if g >= eps {
                -params.lambda * g.ln()
            } else {
                // C¹ linear extension: matches value and slope at g = eps.
                -params.lambda * (eps.ln() + (g - eps) / eps)
            }
        }
        BarrierKind::HardPenalty => params.lambda * (-g).max(0.0),
        BarrierKind::None => 0.0,
    }
}

/// Barrier derivative `dφ_λ/dg`.
pub fn barrier_derivative(params: &RelaxationParams, g: f64) -> f64 {
    match params.barrier {
        BarrierKind::Log { eps } => {
            if g >= eps {
                -params.lambda / g
            } else {
                -params.lambda / eps
            }
        }
        BarrierKind::HardPenalty => {
            if g < 0.0 {
                -params.lambda
            } else {
                0.0
            }
        }
        BarrierKind::None => 0.0,
    }
}

/// Entropy regularizer `ρ Σ x log x` (`0 log 0 := 0`).
pub fn entropy_value(params: &RelaxationParams, x: &Matrix) -> f64 {
    if params.rho == 0.0 {
        return 0.0;
    }
    params.rho
        * x.as_slice()
            .iter()
            .map(|&v| {
                let v = v.max(X_FLOOR);
                v * v.ln()
            })
            .sum::<f64>()
}

/// Capacity-barrier value: `Σ_i φ_λ(slack_i)` over the per-cluster
/// normalized capacity slacks (0 when the problem has no capacity
/// constraints).
pub fn capacity_barrier_value(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    x: &Matrix,
) -> f64 {
    let Some(cap) = &problem.capacity else {
        return 0.0;
    };
    (0..problem.clusters())
        .map(|i| barrier_value(params, cap.slack(x, i)))
        .sum()
}

/// Full relaxed objective `F(X, T, A)`.
pub fn value(problem: &MatchingProblem, params: &RelaxationParams, x: &Matrix) -> f64 {
    let g = reliability_slack(problem, x);
    smooth_cost(problem, params, x)
        + barrier_value(params, g)
        + capacity_barrier_value(problem, params, x)
        + entropy_value(params, x)
}

/// Gradient `∇_X F(X, T, A)` as an `M x N` matrix.
///
/// For the smooth-max cost, `∂F/∂x_ij = w_i · (ζ_i(n_i) t_ij + ζ_i'(n_i) ℓ_i)`
/// plus the barrier term `φ'(g) · a_ij / N` and the entropy term
/// `ρ (1 + log x_ij)`.
pub fn grad_x(problem: &MatchingProblem, params: &RelaxationParams, x: &Matrix) -> Matrix {
    let (m, n) = x.shape();
    let mut stats = ClusterStats::default();
    let mut grad = Matrix::zeros(m, n);
    grad_x_into(problem, params, x, &mut stats, &mut grad);
    grad
}

/// Writes `∇_X F(X, T, A)` into `out`, reusing `stats` as scratch.
/// Performs no heap allocation once `stats` and `out` have the right
/// shape, which is what makes the PGD inner loop allocation-free.
pub fn grad_x_into(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    x: &Matrix,
    stats: &mut ClusterStats,
    out: &mut Matrix,
) {
    let (m, n) = x.shape();
    cluster_stats_into(problem, params, x, stats);
    let g = reliability_slack(problem, x);
    let dphi = barrier_derivative(params, g);
    if out.shape() != (m, n) {
        *out = Matrix::zeros(m, n);
    }
    for i in 0..m {
        let zeta = problem.speedup[i].eval(stats.count[i]);
        let dzeta = problem.speedup[i].derivative(stats.count[i]);
        let w = stats.weights[i];
        // Capacity barrier: ∂slack_i/∂x_ij = −u_ij / limit_i.
        let cap_dphi = problem
            .capacity
            .as_ref()
            .map(|cap| barrier_derivative(params, cap.slack(x, i)));
        for j in 0..n {
            let ds = zeta * problem.times[(i, j)] + dzeta * stats.load[i];
            let mut gij = w * ds;
            if n > 0 {
                gij += dphi * problem.reliability[(i, j)] / n as f64;
            }
            if let (Some(dphi_c), Some(cap)) = (cap_dphi, &problem.capacity) {
                gij -= dphi_c * cap.usage[(i, j)] / cap.limits[i];
            }
            if params.rho != 0.0 {
                gij += params.rho * (1.0 + x[(i, j)].max(X_FLOOR).ln());
            }
            out[(i, j)] = gij;
        }
    }
}

/// Transposed (task-major) problem data plus scratch buffers for the PGD
/// hot loop: with tasks as rows, both the gradient step and the per-task
/// simplex projection read contiguous memory instead of striding by `N`.
///
/// Every accumulation below runs in the same floating-point order as the
/// row-major [`grad_x`] path (per-cluster partial sums over ascending
/// `j`, reduced over ascending `i`), so the produced gradients — and
/// therefore whole solver trajectories — are bitwise identical to it.
#[derive(Debug, Clone)]
pub(crate) struct TransposedEval {
    /// `times` transposed to `N×M`.
    pub tt: Matrix,
    /// `reliability` transposed to `N×M`.
    pub at: Matrix,
    /// Capacity usage transposed to `N×M` (when constrained).
    pub ut: Option<Matrix>,
    count: Vec<f64>,
    load: Vec<f64>,
    weights: Vec<f64>,
    zeta: Vec<f64>,
    dzeta: Vec<f64>,
    rel: Vec<f64>,
    cap_used: Vec<f64>,
    cap_dphi: Vec<f64>,
}

impl Default for TransposedEval {
    fn default() -> Self {
        TransposedEval {
            tt: Matrix::zeros(0, 0),
            at: Matrix::zeros(0, 0),
            ut: None,
            count: Vec::new(),
            load: Vec::new(),
            weights: Vec::new(),
            zeta: Vec::new(),
            dzeta: Vec::new(),
            rel: Vec::new(),
            cap_used: Vec::new(),
            cap_dphi: Vec::new(),
        }
    }
}

fn transpose_into(src: &Matrix, dst: &mut Matrix) {
    let (m, n) = src.shape();
    if dst.shape() != (n, m) {
        *dst = Matrix::zeros(n, m);
    }
    for i in 0..m {
        for (j, &v) in src.row(i).iter().enumerate() {
            dst[(j, i)] = v;
        }
    }
}

impl TransposedEval {
    /// (Re)builds the transposed problem data and sizes the scratch
    /// buffers; reuses existing storage when the shape is unchanged.
    pub fn prepare(&mut self, problem: &MatchingProblem) {
        let m = problem.clusters();
        transpose_into(&problem.times, &mut self.tt);
        transpose_into(&problem.reliability, &mut self.at);
        match &problem.capacity {
            Some(cap) => {
                let ut = self.ut.get_or_insert_with(|| Matrix::zeros(0, 0));
                transpose_into(&cap.usage, ut);
            }
            None => self.ut = None,
        }
        for buf in [
            &mut self.count,
            &mut self.load,
            &mut self.weights,
            &mut self.zeta,
            &mut self.dzeta,
            &mut self.rel,
            &mut self.cap_used,
            &mut self.cap_dphi,
        ] {
            buf.clear();
            buf.resize(m, 0.0);
        }
    }

    /// Writes `∇_X F` in task-major (`N×M`) layout into `out`, given the
    /// task-major iterate `xt`. Allocation-free after [`Self::prepare`].
    pub fn grad_into(
        &mut self,
        problem: &MatchingProblem,
        params: &RelaxationParams,
        xt: &Matrix,
        out: &mut Matrix,
    ) {
        let m = problem.clusters();
        let n = problem.tasks();
        debug_assert_eq!(xt.shape(), (n, m));
        if out.shape() != (n, m) {
            *out = Matrix::zeros(n, m);
        }
        self.count.fill(0.0);
        self.load.fill(0.0);
        self.rel.fill(0.0);
        self.cap_used.fill(0.0);
        for j in 0..n {
            let xr = xt.row(j);
            let tr = self.tt.row(j);
            let ar = self.at.row(j);
            for i in 0..m {
                self.count[i] += xr[i];
                self.load[i] += xr[i] * tr[i];
                self.rel[i] += xr[i] * ar[i];
            }
            if let Some(ut) = &self.ut {
                let ur = ut.row(j);
                for i in 0..m {
                    self.cap_used[i] += xr[i] * ur[i];
                }
            }
        }
        // Reliability slack: per-cluster partials reduced in cluster order,
        // matching `reliability_slack`'s row-by-row accumulation.
        let g = if n == 0 {
            1.0 - problem.gamma
        } else {
            let mut acc = 0.0;
            for i in 0..m {
                acc += self.rel[i];
            }
            acc / n as f64 - problem.gamma
        };
        let dphi = barrier_derivative(params, g);
        for i in 0..m {
            self.zeta[i] = problem.speedup[i].eval(self.count[i]);
            self.dzeta[i] = problem.speedup[i].derivative(self.count[i]);
        }
        match params.cost {
            CostKind::SmoothMax => {
                for i in 0..m {
                    self.weights[i] = params.beta * (self.zeta[i] * self.load[i]);
                }
                vector::softmax_inplace(&mut self.weights);
            }
            CostKind::LinearSum => self.weights.fill(1.0),
        }
        if let Some(cap) = &problem.capacity {
            for i in 0..m {
                let slack = (cap.limits[i] - self.cap_used[i]) / cap.limits[i];
                self.cap_dphi[i] = barrier_derivative(params, slack);
            }
        }
        for j in 0..n {
            let tr = self.tt.row(j);
            let ar = self.at.row(j);
            let xr = xt.row(j);
            for i in 0..m {
                let ds = self.zeta[i] * tr[i] + self.dzeta[i] * self.load[i];
                let mut gij = self.weights[i] * ds;
                if n > 0 {
                    gij += dphi * ar[i] / n as f64;
                }
                if let (Some(ut), Some(cap)) = (&self.ut, &problem.capacity) {
                    gij -= self.cap_dphi[i] * ut[(j, i)] / cap.limits[i];
                }
                if params.rho != 0.0 {
                    gij += params.rho * (1.0 + xr[i].max(X_FLOOR).ln());
                }
                out[(j, i)] = gij;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speedup::SpeedupCurve;
    use mfcp_autodiff::gradcheck;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_problem(seed: u64, m: usize, n: usize, parallel: bool) -> MatchingProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..3.0));
        let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.6..1.0));
        let speedup = if parallel {
            vec![SpeedupCurve::paper_parallel(); m]
        } else {
            vec![SpeedupCurve::None; m]
        };
        MatchingProblem::with_speedup(t, a, 0.7, speedup)
    }

    fn random_interior_x(seed: u64, m: usize, n: usize) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.1..1.0));
        for j in 0..n {
            let col_sum: f64 = (0..m).map(|i| x[(i, j)]).sum();
            for i in 0..m {
                x[(i, j)] /= col_sum;
            }
        }
        x
    }

    #[test]
    fn theorem1_smooth_max_sandwiches_true_max() {
        // f(X,T) <= f̃(X,T) <= f(X,T) + log(M)/β, and f̃ → f as β → ∞.
        let problem = random_problem(1, 4, 6, false);
        let x = random_interior_x(2, 4, 6);
        let f_true = true_cost(&problem, &x);
        let mut prev_gap = f64::INFINITY;
        for beta in [1.0, 5.0, 25.0, 125.0, 625.0] {
            let params = RelaxationParams {
                beta,
                barrier: BarrierKind::None,
                rho: 0.0,
                ..Default::default()
            };
            let f_smooth = smooth_cost(&problem, &params, &x);
            assert!(f_smooth >= f_true - 1e-9, "beta={beta}");
            assert!(
                f_smooth <= f_true + (4.0_f64).ln() / beta + 1e-9,
                "beta={beta}"
            );
            let gap = f_smooth - f_true;
            assert!(gap <= prev_gap + 1e-12, "gap must shrink with beta");
            prev_gap = gap;
        }
        assert!(
            prev_gap < 1e-3,
            "beta=625 should be within 1e-3 of true max"
        );
    }

    #[test]
    fn linear_cost_is_sum() {
        let problem = random_problem(3, 3, 4, false);
        let x = random_interior_x(4, 3, 4);
        let params = RelaxationParams {
            cost: CostKind::LinearSum,
            barrier: BarrierKind::None,
            rho: 0.0,
            ..Default::default()
        };
        let expected: f64 = (0..3)
            .map(|i| vector::dot(x.row(i), problem.times.row(i)))
            .sum();
        assert!((smooth_cost(&problem, &params, &x) - expected).abs() < 1e-12);
    }

    #[test]
    fn reliability_slack_matches_assignment_metric() {
        // On a 0/1 matrix, slack + gamma equals the Assignment metric.
        let problem = random_problem(5, 3, 5, false);
        let asg = crate::problem::Assignment::new(vec![0, 1, 2, 0, 1]);
        let x = asg.to_matrix(3);
        let slack = reliability_slack(&problem, &x);
        assert!((slack + problem.gamma - asg.mean_reliability(&problem)).abs() < 1e-12);
    }

    #[test]
    fn barrier_log_and_extension_are_c1() {
        let params = RelaxationParams {
            lambda: 0.5,
            barrier: BarrierKind::Log { eps: 1e-2 },
            ..Default::default()
        };
        // Continuity at eps.
        let eps = 1e-2;
        let v_hi = barrier_value(&params, eps + 1e-9);
        let v_lo = barrier_value(&params, eps - 1e-9);
        assert!((v_hi - v_lo).abs() < 1e-6);
        let d_hi = barrier_derivative(&params, eps + 1e-9);
        let d_lo = barrier_derivative(&params, eps - 1e-9);
        assert!((d_hi - d_lo).abs() < 1e-3);
        // Steeply increasing cost as slack shrinks.
        assert!(barrier_value(&params, 1e-4) > barrier_value(&params, 0.1));
    }

    #[test]
    fn hard_penalty_zero_when_feasible() {
        let params = RelaxationParams {
            lambda: 2.0,
            barrier: BarrierKind::HardPenalty,
            ..Default::default()
        };
        assert_eq!(barrier_value(&params, 0.3), 0.0);
        assert_eq!(barrier_derivative(&params, 0.3), 0.0);
        assert!((barrier_value(&params, -0.1) - 0.2).abs() < 1e-12);
        assert_eq!(barrier_derivative(&params, -0.1), -2.0);
    }

    #[test]
    fn gradient_matches_finite_difference_all_variants() {
        let configs = [
            (false, CostKind::SmoothMax, BarrierKind::log(), 0.01),
            (false, CostKind::SmoothMax, BarrierKind::HardPenalty, 0.0),
            (false, CostKind::LinearSum, BarrierKind::log(), 0.01),
            (true, CostKind::SmoothMax, BarrierKind::log(), 0.01),
            (true, CostKind::SmoothMax, BarrierKind::None, 0.0),
        ];
        for (idx, &(parallel, cost, barrier, rho)) in configs.iter().enumerate() {
            let problem = random_problem(10 + idx as u64, 3, 5, parallel);
            let x = random_interior_x(20 + idx as u64, 3, 5);
            let params = RelaxationParams {
                beta: 4.0,
                lambda: 0.1,
                rho,
                barrier,
                cost,
            };
            let analytic = grad_x(&problem, &params, &x);
            gradcheck::assert_gradients_close(
                &x,
                |xm| value(&problem, &params, xm),
                &analytic,
                1e-6,
                1e-6,
            );
        }
    }

    #[test]
    fn entropy_zero_when_rho_zero() {
        let params = RelaxationParams {
            rho: 0.0,
            ..Default::default()
        };
        let x = Matrix::filled(2, 2, 0.5);
        assert_eq!(entropy_value(&params, &x), 0.0);
    }

    #[test]
    fn entropy_minimized_at_uniform() {
        let params = RelaxationParams {
            rho: 1.0,
            ..Default::default()
        };
        let uniform = Matrix::filled(2, 1, 0.5);
        let skewed = Matrix::from_rows(&[&[0.9], &[0.1]]);
        assert!(entropy_value(&params, &uniform) < entropy_value(&params, &skewed));
    }

    #[test]
    fn grad_x_into_matches_grad_x_bitwise() {
        let problem = random_problem(31, 4, 6, true);
        let x = random_interior_x(32, 4, 6);
        let params = RelaxationParams::default();
        let expected = grad_x(&problem, &params, &x);
        let mut stats = ClusterStats::default();
        let mut out = Matrix::zeros(1, 1); // wrong shape: must be resized
        grad_x_into(&problem, &params, &x, &mut stats, &mut out);
        assert_eq!(out.as_slice(), expected.as_slice());
    }

    #[test]
    fn transposed_gradient_is_bitwise_identical() {
        use crate::problem::CapacityConstraint;
        for (seed, parallel, with_cap) in
            [(41u64, false, false), (42, true, false), (43, true, true)]
        {
            let mut problem = random_problem(seed, 3, 7, parallel);
            if with_cap {
                let mut rng = StdRng::seed_from_u64(seed + 100);
                problem.capacity = Some(CapacityConstraint {
                    usage: Matrix::from_fn(3, 7, |_, _| rng.gen_range(0.1..1.0)),
                    limits: vec![4.0, 5.0, 6.0],
                });
            }
            let x = random_interior_x(seed + 1, 3, 7);
            let params = RelaxationParams::default();
            let expected = grad_x(&problem, &params, &x);
            let mut te = TransposedEval::default();
            te.prepare(&problem);
            let mut xt = Matrix::zeros(0, 0);
            transpose_into(&x, &mut xt);
            let mut gt = Matrix::zeros(0, 0);
            te.grad_into(&problem, &params, &xt, &mut gt);
            for i in 0..3 {
                for j in 0..7 {
                    assert_eq!(
                        gt[(j, i)].to_bits(),
                        expected[(i, j)].to_bits(),
                        "seed={seed} entry ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_problem_slack() {
        let p = MatchingProblem::new(Matrix::zeros(2, 0), Matrix::zeros(2, 0), 0.8);
        let x = Matrix::zeros(2, 0);
        assert!((reliability_slack(&p, &x) - 0.2).abs() < 1e-12);
    }
}
