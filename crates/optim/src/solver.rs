//! Algorithm 1: optimal relaxed matching by projected gradient descent.
//!
//! The paper's Algorithm 1 alternates a gradient step on `F(X, T, A)` with
//! a per-task-column softmax projection back onto the simplex. We support
//! three readings of that projection (an ablation in `mfcp-bench`):
//!
//! * [`ProjectionKind::MirrorDescent`] (default) — exponentiated gradient:
//!   `x_ij ← x_ij · exp(-η ∂F/∂x_ij)` renormalized per column. This is the
//!   entropic-geometry projected step; it keeps iterates strictly interior
//!   (which the log barrier and the KKT differentiation both want) and is
//!   what "gradient step then softmax" converges to when `X` is stored as
//!   logits.
//! * [`ProjectionKind::SoftmaxPaper`] — the literal Algorithm 1 lines 3–4:
//!   `X ← X − η∇F`, then `softmax` of each column of the *values*.
//! * [`ProjectionKind::Euclidean`] — classical sort-based projection onto
//!   the simplex after the gradient step.

use crate::kkt::KktWorkspace;
use crate::objective::{self, ClusterStats, RelaxationParams, TransposedEval};
use crate::problem::MatchingProblem;
use crate::recovery::{FallbackStage, SolveError};
use mfcp_linalg::{vector, Matrix};

/// Reusable buffers for the PGD hot loop: the task-major working copy of
/// the iterate, the task-major gradient, the per-task projection scratch,
/// and the transposed problem data. One workspace per solve (or per
/// thread) makes every inner iteration allocation-free after warm-up.
#[derive(Debug, Clone)]
pub struct PgdWorkspace {
    xt: Matrix,
    grad_t: Matrix,
    col: Vec<f64>,
    proj: Vec<f64>,
    teval: TransposedEval,
}

impl Default for PgdWorkspace {
    fn default() -> Self {
        PgdWorkspace {
            xt: Matrix::zeros(0, 0),
            grad_t: Matrix::zeros(0, 0),
            col: Vec::new(),
            proj: Vec::new(),
            teval: TransposedEval::default(),
        }
    }
}

impl PgdWorkspace {
    /// A fresh workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-iterate health hook used by the guarded solver entry points in
/// [`crate::recovery`]: called after every accepted iterate with the
/// iteration count, the current matching, and the step magnitude
/// (`max |ΔX|` for PGD, `α·max|Δx|` for Newton); returning an error
/// aborts the solve.
pub(crate) type IterGuard<'a> = &'a mut dyn FnMut(usize, &Matrix, f64) -> Result<(), SolveError>;

/// Simplex-projection flavor used after each gradient step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProjectionKind {
    /// Exponentiated-gradient / mirror-descent step (default).
    MirrorDescent,
    /// Literal paper Algorithm 1: value-space softmax after the step.
    SoftmaxPaper,
    /// Euclidean projection onto the simplex after the step.
    Euclidean,
}

/// Options for [`solve_relaxed`].
#[derive(Debug, Clone, Copy)]
pub struct SolverOptions {
    /// Maximum gradient-descent iterations (`Epochs` in Algorithm 1).
    pub max_iters: usize,
    /// Step size `η`.
    pub lr: f64,
    /// Convergence tolerance on `max |X_{k+1} - X_k|`.
    pub tol: f64,
    /// Projection flavor.
    pub projection: ProjectionKind,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            max_iters: 400,
            lr: 0.8,
            tol: 1e-8,
            projection: ProjectionKind::MirrorDescent,
        }
    }
}

/// The result of a relaxed solve.
#[derive(Debug, Clone)]
pub struct RelaxedSolution {
    /// The relaxed matching: columns on the probability simplex.
    pub x: Matrix,
    /// Objective value `F(X, T, A)` at the solution.
    pub objective: f64,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Whether the step-change tolerance was reached before `max_iters`.
    pub converged: bool,
}

/// Uniform initial matching: every task spread equally over clusters.
pub fn uniform_init(m: usize, n: usize) -> Matrix {
    Matrix::filled(m, n, 1.0 / m.max(1) as f64)
}

/// Solves the relaxed matching problem (10) by Algorithm 1 from the
/// uniform initial point.
///
/// ```
/// use mfcp_linalg::Matrix;
/// use mfcp_optim::solver::{solve_relaxed, SolverOptions};
/// use mfcp_optim::{MatchingProblem, RelaxationParams};
///
/// let times = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
/// let rel = Matrix::filled(2, 2, 0.9);
/// let problem = MatchingProblem::new(times, rel, 0.8);
/// let sol = solve_relaxed(&problem, &RelaxationParams::default(), &SolverOptions::default());
/// // Each task leans toward its faster cluster.
/// assert!(sol.x[(0, 0)] > 0.5 && sol.x[(1, 1)] > 0.5);
/// ```
pub fn solve_relaxed(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    opts: &SolverOptions,
) -> RelaxedSolution {
    let x0 = uniform_init(problem.clusters(), problem.tasks());
    solve_relaxed_from(problem, params, opts, x0)
}

/// Solves the relaxed matching problem starting from `x0` (columns must
/// lie on the simplex). Warm starts from a cached optimum enter here;
/// the solve counter and iteration histogram cover both cold and warm
/// entries.
pub fn solve_relaxed_from(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    opts: &SolverOptions,
    x: Matrix,
) -> RelaxedSolution {
    let _span = mfcp_obs::span("solve_relaxed");
    mfcp_obs::counter("optim.solve.calls").inc();
    let mut ws = PgdWorkspace::default();
    let sol = match solve_relaxed_from_guarded(
        problem,
        params,
        opts,
        x,
        &mut |_, _, _| Ok(()),
        &mut ws,
    ) {
        Ok(sol) => sol,
        Err(_) => unreachable!("the no-op guard never fails"),
    };
    mfcp_obs::histogram("optim.solve.iters").record(sol.iterations as f64);
    sol
}

/// Guarded variant of [`solve_relaxed_from`]: `guard` is invoked after
/// every iterate update and may abort the solve with a typed error.
///
/// The hot loop runs on a task-major (`N×M`) working copy of the iterate:
/// with tasks as rows, the gradient step and the per-task simplex
/// projection both read and write contiguous memory instead of striding
/// by `N`, and every buffer lives in `ws` so no iteration allocates. The
/// update arithmetic runs in the exact floating-point order of the
/// original cluster-major loop, so trajectories are bitwise identical
/// (see `transposed_solver_is_bitwise_identical`).
pub(crate) fn solve_relaxed_from_guarded(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    opts: &SolverOptions,
    mut x: Matrix,
    guard: IterGuard<'_>,
    ws: &mut PgdWorkspace,
) -> Result<RelaxedSolution, SolveError> {
    let (m, n) = (problem.clusters(), problem.tasks());
    assert_eq!(x.shape(), (m, n), "x0 shape mismatch");
    if n == 0 || m == 0 {
        let objective = objective::value(problem, params, &x);
        return Ok(RelaxedSolution {
            x,
            objective,
            iterations: 0,
            converged: true,
        });
    }
    let PgdWorkspace {
        xt,
        grad_t,
        col,
        proj,
        teval,
    } = ws;
    teval.prepare(problem);
    if xt.shape() != (n, m) {
        *xt = Matrix::zeros(n, m);
    }
    for i in 0..m {
        for (j, &v) in x.row(i).iter().enumerate() {
            xt[(j, i)] = v;
        }
    }
    col.clear();
    col.resize(m, 0.0);
    let mut converged = false;
    let mut iterations = 0;
    for iter in 0..opts.max_iters {
        iterations = iter + 1;
        teval.grad_into(problem, params, xt, grad_t);
        let mut max_change: f64 = 0.0;
        match opts.projection {
            ProjectionKind::MirrorDescent => {
                for j in 0..n {
                    let xr = xt.row_mut(j);
                    let gr = grad_t.row(j);
                    // x_ij ∝ x_ij · exp(-η g_ij), computed stably in log space.
                    for (c, (xv, gv)) in col.iter_mut().zip(xr.iter().zip(gr)) {
                        *c = xv.max(1e-300).ln() - opts.lr * gv;
                    }
                    vector::softmax_inplace(col);
                    for (xv, &c) in xr.iter_mut().zip(col.iter()) {
                        max_change = max_change.max((c - *xv).abs());
                        *xv = c;
                    }
                }
            }
            ProjectionKind::SoftmaxPaper => {
                for j in 0..n {
                    let xr = xt.row_mut(j);
                    let gr = grad_t.row(j);
                    for (c, (xv, gv)) in col.iter_mut().zip(xr.iter().zip(gr)) {
                        *c = xv - opts.lr * gv;
                    }
                    vector::softmax_inplace(col);
                    for (xv, &c) in xr.iter_mut().zip(col.iter()) {
                        max_change = max_change.max((c - *xv).abs());
                        *xv = c;
                    }
                }
            }
            ProjectionKind::Euclidean => {
                for j in 0..n {
                    let xr = xt.row_mut(j);
                    let gr = grad_t.row(j);
                    for (c, (xv, gv)) in col.iter_mut().zip(xr.iter().zip(gr)) {
                        *c = xv - opts.lr * gv;
                    }
                    project_simplex_with(col, proj);
                    for (xv, &c) in xr.iter_mut().zip(col.iter()) {
                        max_change = max_change.max((c - *xv).abs());
                        *xv = c;
                    }
                }
            }
        }
        // Mirror the iterate back to cluster-major: the guard evaluates
        // the objective on it and the caller receives it.
        for i in 0..m {
            let xrow = x.row_mut(i);
            for (j, slot) in xrow.iter_mut().enumerate() {
                *slot = xt[(j, i)];
            }
        }
        // Strided flight-recorder markers: iteration 1 plus every 8th keep
        // the per-iteration cost a single branch while still showing PGD
        // progress (arg = iteration) on the trace timeline.
        if (iterations == 1 || iterations.is_multiple_of(8)) && mfcp_obs::trace::recording() {
            static PGD_ITER: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
            let id = *PGD_ITER.get_or_init(|| mfcp_obs::trace::intern("pgd.iter"));
            mfcp_obs::trace::instant_id(id, Some(iterations as u64));
        }
        guard(iterations, &x, max_change)?;
        if max_change < opts.tol {
            converged = true;
            break;
        }
    }
    let objective = objective::value(problem, params, &x);
    Ok(RelaxedSolution {
        x,
        objective,
        iterations,
        converged,
    })
}

/// Options for [`solve_relaxed_newton`].
#[derive(Debug, Clone, Copy)]
pub struct NewtonOptions {
    /// Maximum Newton iterations.
    pub max_iters: usize,
    /// Stop when the projected-gradient infinity norm falls below this.
    pub grad_tol: f64,
    /// Fraction-to-boundary rule: step length keeps
    /// `x + αΔx ≥ (1 − fraction) · x`.
    pub fraction_to_boundary: f64,
    /// Armijo sufficient-decrease coefficient.
    pub armijo_c: f64,
    /// Backtracking shrink factor.
    pub armijo_shrink: f64,
    /// Maximum backtracking steps per iteration.
    pub max_backtracks: usize,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iters: 60,
            grad_tol: 1e-7,
            fraction_to_boundary: 0.995,
            armijo_c: 1e-4,
            armijo_shrink: 0.5,
            max_backtracks: 40,
        }
    }
}

/// Second-order alternative to Algorithm 1: damped Newton steps on the
/// equality-constrained barrier problem (10).
///
/// Each iteration solves the primal KKT system
/// `[[H, Dᵀ], [D, 0]] [Δx; ν] = [−∇F; 0]` (the same matrix the MFCP-AD
/// backward pass factors), applies the interior-point
/// fraction-to-boundary rule so iterates stay strictly positive, and
/// backtracks until Armijo sufficient decrease holds. Converges in a
/// handful of iterations where mirror descent needs hundreds — see the
/// `newton_vs_mirror` bench — at the price of a dense `(MN+N)` LU per
/// step, and is restricted to the convex (sequential) setting like every
/// second-order method in this crate.
pub fn solve_relaxed_newton(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    opts: &NewtonOptions,
) -> RelaxedSolution {
    let mut ws = KktWorkspace::new();
    match solve_relaxed_newton_impl(problem, params, opts, false, &mut |_, _, _| Ok(()), &mut ws) {
        Ok(sol) => sol,
        Err(_) => unreachable!("non-strict Newton with a no-op guard never fails"),
    }
}

/// [`solve_relaxed_newton`] against a caller-owned [`KktWorkspace`] —
/// the entry point for callers that pre-configure the workspace (e.g.
/// [`crate::sharded::ShardedSolver::solve_newton`] enabling the sharded
/// Schur path) or that want the factorization buffers to survive across
/// solves.
pub(crate) fn solve_relaxed_newton_with_workspace(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    opts: &NewtonOptions,
    kkt_ws: &mut KktWorkspace,
) -> RelaxedSolution {
    match solve_relaxed_newton_impl(problem, params, opts, false, &mut |_, _, _| Ok(()), kkt_ws) {
        Ok(sol) => sol,
        Err(_) => unreachable!("non-strict Newton with a no-op guard never fails"),
    }
}

/// Guarded variant of [`solve_relaxed_newton`]. With `strict` set, a
/// singular KKT system is reported as [`SolveError::SingularKkt`] instead
/// of silently returning the current iterate; `guard` runs after every
/// accepted Newton step. The caller-owned `kkt_ws` carries the structured
/// KKT factorization buffers across iterations (and across solves).
pub(crate) fn solve_relaxed_newton_guarded(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    opts: &NewtonOptions,
    guard: IterGuard<'_>,
    kkt_ws: &mut KktWorkspace,
) -> Result<RelaxedSolution, SolveError> {
    solve_relaxed_newton_impl(problem, params, opts, true, guard, kkt_ws)
}

fn solve_relaxed_newton_impl(
    problem: &MatchingProblem,
    params: &RelaxationParams,
    opts: &NewtonOptions,
    strict: bool,
    guard: IterGuard<'_>,
    kkt_ws: &mut KktWorkspace,
) -> Result<RelaxedSolution, SolveError> {
    assert!(
        problem.speedup.iter().all(|c| c.is_trivial()),
        "Newton solver requires the convex (sequential) setting"
    );
    let (m, n) = (problem.clusters(), problem.tasks());
    let mut x = uniform_init(m, n);
    if m == 0 || n == 0 {
        let objective = objective::value(problem, params, &x);
        return Ok(RelaxedSolution {
            x,
            objective,
            iterations: 0,
            converged: true,
        });
    }
    let mn = m * n;
    let mut converged = false;
    let mut iterations = 0;
    let mut f_prev = f64::INFINITY;
    let mut stagnant = 0usize;
    let mut stats = ClusterStats::default();
    let mut grad = Matrix::zeros(m, n);
    let mut rhs = vec![0.0; mn + n];
    for iter in 0..opts.max_iters {
        iterations = iter + 1;
        objective::grad_x_into(problem, params, &x, &mut stats, &mut grad);
        // Stationarity on each simplex column: the full gradient (which
        // includes the entropy term) must be constant across the *active*
        // coordinates. Collapsed coordinates (x at the numerical floor)
        // are excluded — their true entropy gradient is −∞-like and never
        // equalizes in floating point; their complementarity contribution
        // `x·(g − g_min)` is separately required to be negligible.
        let mut residual: f64 = 0.0;
        for j in 0..n {
            let gmin = (0..m).map(|i| grad[(i, j)]).fold(f64::INFINITY, f64::min);
            let active: Vec<usize> = (0..m).filter(|&i| x[(i, j)] > 1e-6).collect();
            let mean: f64 =
                active.iter().map(|&i| grad[(i, j)]).sum::<f64>() / active.len().max(1) as f64;
            for &i in &active {
                residual = residual.max((grad[(i, j)] - mean).abs());
            }
            for i in 0..m {
                if x[(i, j)] <= 1e-6 {
                    residual = residual.max(x[(i, j)] * (grad[(i, j)] - gmin));
                }
            }
        }
        if residual < opts.grad_tol {
            converged = true;
            break;
        }
        // Newton step from the shared KKT factorization (structured
        // elimination when applicable, dense LU fallback otherwise).
        rhs.iter_mut().for_each(|v| *v = 0.0);
        for (slot, g) in rhs[..mn].iter_mut().zip(grad.as_slice()) {
            *slot = -g;
        }
        let factored = kkt_ws
            .factor(problem, params, &x)
            .and_then(|()| kkt_ws.solve_in_place(&mut rhs));
        match factored {
            Ok(()) => {}
            Err(_) if strict => {
                return Err(SolveError::SingularKkt {
                    stage: FallbackStage::Newton,
                    iteration: iterations,
                })
            }
            Err(_) => break, // singular KKT system: return the current iterate
        }
        let mut step = Matrix::from_fn(m, n, |i, j| rhs[i * n + j]);

        // Coordinates already at the numerical floor would throttle the
        // fraction-to-boundary step length to nothing; freeze them (their
        // residual mass is ≤ MN·floor and is re-normalized away below).
        const X_NUMERICAL_FLOOR: f64 = 1e-9;
        for (xi, si) in x.as_slice().iter().zip(step.as_mut_slice()) {
            if *xi <= 10.0 * X_NUMERICAL_FLOOR && *si < 0.0 {
                *si = 0.0;
            }
        }

        // Fraction-to-boundary: keep every coordinate strictly positive.
        let mut alpha: f64 = 1.0;
        for (xi, si) in x.as_slice().iter().zip(step.as_slice()) {
            if *si < 0.0 {
                alpha = alpha.min(-opts.fraction_to_boundary * xi / si);
            }
        }
        alpha = alpha.min(1.0);

        // Armijo backtracking on F.
        let f0 = objective::value(problem, params, &x);
        let slope: f64 = grad
            .as_slice()
            .iter()
            .zip(step.as_slice())
            .map(|(g, s)| g * s)
            .sum();
        let mut accepted = false;
        for _ in 0..opts.max_backtracks {
            let mut trial = x.axpy(alpha, &step).expect("shape");
            // Frozen coordinates can leave columns off the simplex by a
            // vanishing amount; re-normalize.
            for j in 0..n {
                let sum: f64 = (0..m).map(|i| trial[(i, j)]).sum();
                for i in 0..m {
                    trial[(i, j)] = (trial[(i, j)] / sum).max(X_NUMERICAL_FLOOR);
                }
            }
            let f_trial = objective::value(problem, params, &trial);
            if f_trial <= f0 + opts.armijo_c * alpha * slope {
                x = trial;
                accepted = true;
                break;
            }
            alpha *= opts.armijo_shrink;
        }
        if !accepted {
            // No acceptable step: the iterate is stationary to numerical
            // resolution.
            converged = true;
            break;
        }
        guard(iterations, &x, alpha * step.max_abs())?;
        // Objective stagnation: the clamped/renormalized iterate has hit
        // the resolution limit of the floored entropy term — the point is
        // optimal to within floating-point reproducibility.
        let f_new = objective::value(problem, params, &x);
        if (f_prev - f_new).abs() <= 1e-10 * (1.0 + f_new.abs()) {
            stagnant += 1;
            if stagnant >= 2 {
                converged = true;
                break;
            }
        } else {
            stagnant = 0;
        }
        f_prev = f_new;
    }
    let objective = objective::value(problem, params, &x);
    Ok(RelaxedSolution {
        x,
        objective,
        iterations,
        converged,
    })
}

/// Euclidean projection of `v` onto the probability simplex
/// (Held–Wolfe–Crowder / sort-based algorithm).
///
/// Non-finite input is handled deterministically instead of poisoning the
/// sort-based path (where a NaN pivot silently corrupts `θ`):
///
/// * `NaN` and `-∞` entries carry no mass and project to `0`.
/// * If any entry is `+∞`, the unit mass is split uniformly over the
///   `+∞` entries and every other entry is `0`.
/// * If *no* entry is finite (and none is `+∞`), the result is the
///   uniform vector `1/n`.
pub fn project_simplex(v: &mut [f64]) {
    let mut scratch = Vec::new();
    project_simplex_with(v, &mut scratch);
}

/// [`project_simplex`] with a caller-owned scratch buffer for the sort
/// copy, so hot loops (the Euclidean PGD projection runs once per task
/// per iteration) stay allocation-free after warm-up. Identical
/// arithmetic to the allocating wrapper.
pub fn project_simplex_with(v: &mut [f64], scratch: &mut Vec<f64>) {
    let n = v.len();
    if n == 0 {
        return;
    }
    if v.iter().any(|x| !x.is_finite()) {
        let pos_inf = v.iter().filter(|x| **x == f64::INFINITY).count();
        if pos_inf > 0 {
            let share = 1.0 / pos_inf as f64;
            for vi in v.iter_mut() {
                *vi = if *vi == f64::INFINITY { share } else { 0.0 };
            }
            return;
        }
        let finite: Vec<f64> = v.iter().copied().filter(|x| x.is_finite()).collect();
        if finite.is_empty() {
            v.fill(1.0 / n as f64);
            return;
        }
        let mut projected = finite;
        project_simplex(&mut projected);
        let mut next = projected.into_iter();
        for vi in v.iter_mut() {
            *vi = if vi.is_finite() {
                next.next().expect("one projected value per finite entry")
            } else {
                0.0
            };
        }
        return;
    }
    scratch.clear();
    scratch.extend_from_slice(v);
    let u = &mut *scratch;
    // Unstable sort: never allocates, and under `total_cmp` equal keys
    // are bitwise-identical floats, so the sorted values — and therefore
    // θ — match the stable sort exactly.
    u.sort_unstable_by(|a, b| b.total_cmp(a));
    let mut css = 0.0;
    let mut theta = 0.0;
    for (k, &uk) in u.iter().enumerate() {
        css += uk;
        let t = (css - 1.0) / (k + 1) as f64;
        if uk - t > 0.0 {
            theta = t;
        }
    }
    for vi in v.iter_mut() {
        *vi = (*vi - theta).max(0.0);
    }
}

/// Checks that every column of `x` lies on the probability simplex within
/// `tol`.
pub fn is_column_stochastic(x: &Matrix, tol: f64) -> bool {
    for j in 0..x.cols() {
        let mut sum = 0.0;
        for i in 0..x.rows() {
            let v = x[(i, j)];
            if !(-tol..=1.0 + tol).contains(&v) {
                return false;
            }
            sum += v;
        }
        if (sum - 1.0).abs() > tol {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{BarrierKind, CostKind};
    use crate::speedup::SpeedupCurve;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_problem(seed: u64, m: usize, n: usize) -> MatchingProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..3.0));
        let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.7..1.0));
        MatchingProblem::new(t, a, 0.75)
    }

    #[test]
    fn project_simplex_known_cases() {
        let mut v = vec![0.5, 0.5];
        project_simplex(&mut v);
        assert!((v[0] - 0.5).abs() < 1e-12);

        let mut v = vec![2.0, 0.0];
        project_simplex(&mut v);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[1] - 0.0).abs() < 1e-12);

        let mut v = vec![0.3, 0.3, 0.3];
        project_simplex(&mut v);
        let sum: f64 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((v[0] - v[1]).abs() < 1e-12);
    }

    #[test]
    fn project_simplex_idempotent() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let mut v: Vec<f64> = (0..5).map(|_| rng.gen_range(-2.0..2.0)).collect();
            project_simplex(&mut v);
            let first = v.clone();
            project_simplex(&mut v);
            for (a, b) in v.iter().zip(&first) {
                assert!((a - b).abs() < 1e-12);
            }
            assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(v.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn project_simplex_nan_entries_get_no_mass() {
        let mut v = vec![f64::NAN, 2.0, f64::NAN, 0.0];
        project_simplex(&mut v);
        assert_eq!(v[0], 0.0);
        assert_eq!(v[2], 0.0);
        assert!((v[1] - 1.0).abs() < 1e-12, "{v:?}");
        assert_eq!(v[3], 0.0);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn project_simplex_neg_infinity_gets_no_mass() {
        let mut v = vec![f64::NEG_INFINITY, 0.25, 0.25];
        project_simplex(&mut v);
        assert_eq!(v[0], 0.0);
        assert!((v[1] - 0.5).abs() < 1e-12, "{v:?}");
        assert!((v[2] - 0.5).abs() < 1e-12, "{v:?}");
    }

    #[test]
    fn project_simplex_pos_infinity_dominates() {
        let mut v = vec![1.0, f64::INFINITY, f64::INFINITY, f64::NAN];
        project_simplex(&mut v);
        assert_eq!(v, vec![0.0, 0.5, 0.5, 0.0]);
    }

    #[test]
    fn project_simplex_all_invalid_falls_back_to_uniform() {
        let mut v = vec![f64::NAN, f64::NEG_INFINITY, f64::NAN, f64::NAN];
        project_simplex(&mut v);
        assert_eq!(v, vec![0.25; 4]);
    }

    #[test]
    fn project_simplex_nonfinite_result_is_idempotent() {
        for case in [
            vec![f64::NAN, 3.0, -1.0],
            vec![f64::INFINITY, 0.0, f64::NAN],
            vec![f64::NAN, f64::NAN],
        ] {
            let mut v = case;
            project_simplex(&mut v);
            let first = v.clone();
            project_simplex(&mut v);
            assert_eq!(v, first);
            assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(v.iter().all(|&x| x.is_finite() && x >= 0.0));
        }
    }

    #[test]
    fn solver_stays_on_simplex_all_projections() {
        let problem = random_problem(1, 3, 6);
        let params = RelaxationParams::default();
        for proj in [
            ProjectionKind::MirrorDescent,
            ProjectionKind::SoftmaxPaper,
            ProjectionKind::Euclidean,
        ] {
            let opts = SolverOptions {
                projection: proj,
                max_iters: 150,
                ..Default::default()
            };
            let sol = solve_relaxed(&problem, &params, &opts);
            assert!(
                is_column_stochastic(&sol.x, 1e-6),
                "projection {proj:?} left the simplex"
            );
            assert!(sol.objective.is_finite());
        }
    }

    #[test]
    fn solver_decreases_objective() {
        let problem = random_problem(2, 3, 8);
        let params = RelaxationParams::default();
        let opts = SolverOptions::default();
        let x0 = uniform_init(3, 8);
        let initial = objective::value(&problem, &params, &x0);
        let sol = solve_relaxed(&problem, &params, &opts);
        assert!(
            sol.objective < initial,
            "objective should improve: {initial} -> {}",
            sol.objective
        );
    }

    #[test]
    fn solver_matches_obvious_optimum() {
        // One task, two clusters; cluster 1 is strictly faster and equally
        // reliable — all mass should end up there.
        let t = Matrix::from_rows(&[&[5.0], &[1.0]]);
        let a = Matrix::from_rows(&[&[0.9], &[0.9]]);
        let problem = MatchingProblem::new(t, a, 0.5);
        let params = RelaxationParams {
            beta: 10.0,
            rho: 0.005,
            ..Default::default()
        };
        let sol = solve_relaxed(&problem, &params, &SolverOptions::default());
        // The *relaxed* optimum splits the task to balance 5·x₀ ≈ 1·x₁
        // (fractional assignment lowers the relaxed makespan); the fast
        // cluster must still carry the dominant share so rounding picks it.
        assert!(
            sol.x[(1, 0)] > sol.x[(0, 0)],
            "fast cluster should dominate, got {:?}",
            sol.x
        );
        // Relaxed cluster times must be closer than the raw 5:1 ratio —
        // the split trades off smooth-max balance against the entropy term.
        let (t0, t1) = (5.0 * sol.x[(0, 0)], sol.x[(1, 0)]);
        assert!(
            (t0 - t1).abs() < 0.5,
            "relaxed optimum should roughly balance cluster times, got {t0} vs {t1}"
        );
        let rounded = crate::rounding::round_argmax(&sol.x);
        assert_eq!(rounded.cluster_of, vec![1]);
    }

    #[test]
    fn solver_balances_identical_clusters() {
        // Identical clusters: by symmetry the smoothed makespan+entropy
        // optimum splits tasks evenly.
        let t = Matrix::filled(2, 4, 1.0);
        let a = Matrix::filled(2, 4, 0.9);
        let problem = MatchingProblem::new(t, a, 0.5);
        let params = RelaxationParams::default();
        let sol = solve_relaxed(&problem, &params, &SolverOptions::default());
        for j in 0..4 {
            assert!((sol.x[(0, j)] - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn barrier_steers_toward_reliable_cluster() {
        // Cluster 0 is faster but unreliable; with a binding reliability
        // threshold the solution must shift mass to cluster 1.
        let t = Matrix::from_rows(&[&[1.0, 1.0], &[1.6, 1.6]]);
        let a = Matrix::from_rows(&[&[0.60, 0.60], &[0.99, 0.99]]);
        let loose = MatchingProblem::new(t.clone(), a.clone(), 0.10);
        let tight = MatchingProblem::new(t, a, 0.90);
        let params = RelaxationParams {
            lambda: 0.08,
            ..Default::default()
        };
        let opts = SolverOptions::default();
        let sol_loose = solve_relaxed(&loose, &params, &opts);
        let sol_tight = solve_relaxed(&tight, &params, &opts);
        let mass1_loose: f64 = (0..2).map(|j| sol_loose.x[(1, j)]).sum();
        let mass1_tight: f64 = (0..2).map(|j| sol_tight.x[(1, j)]).sum();
        assert!(
            mass1_tight > mass1_loose + 0.2,
            "tight constraint should shift mass to the reliable cluster: {mass1_loose} vs {mass1_tight}"
        );
        let slack = objective::reliability_slack(&tight, &sol_tight.x);
        assert!(
            slack > -0.02,
            "solution should be near-feasible, slack={slack}"
        );
    }

    #[test]
    fn theorem4_linear_convergence_in_convex_case() {
        // With SpeedupCurve::None the objective is convex; mirror descent
        // distance-to-solution should shrink geometrically. We verify the
        // objective gap decreases monotonically and collapses.
        let problem = random_problem(7, 3, 5);
        let params = RelaxationParams::default();
        let mut gaps = Vec::new();
        // A conservative step size keeps the trajectory monotone; at the
        // default lr = 0.8 this instance overshoots early and transiently
        // dips below its own limit point, which breaks the gap comparison.
        let final_sol = solve_relaxed(
            &problem,
            &params,
            &SolverOptions {
                max_iters: 2000,
                lr: 0.4,
                tol: 0.0,
                ..Default::default()
            },
        );
        for iters in [10, 40, 160, 640] {
            let sol = solve_relaxed(
                &problem,
                &params,
                &SolverOptions {
                    max_iters: iters,
                    lr: 0.4,
                    tol: 0.0,
                    ..Default::default()
                },
            );
            gaps.push(sol.objective - final_sol.objective);
        }
        for w in gaps.windows(2) {
            assert!(w[1] <= w[0] + 1e-10, "gap must shrink: {gaps:?}");
        }
        assert!(gaps.last().unwrap().abs() < 1e-6, "gaps: {gaps:?}");
    }

    #[test]
    fn nonconvex_parallel_case_still_solves() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = Matrix::from_fn(3, 8, |_, _| rng.gen_range(0.5..3.0));
        let a = Matrix::from_fn(3, 8, |_, _| rng.gen_range(0.7..1.0));
        let problem =
            MatchingProblem::with_speedup(t, a, 0.75, vec![SpeedupCurve::paper_parallel(); 3]);
        let params = RelaxationParams::default();
        let x0 = uniform_init(3, 8);
        let initial = objective::value(&problem, &params, &x0);
        let sol = solve_relaxed(&problem, &params, &SolverOptions::default());
        assert!(sol.objective < initial);
        assert!(is_column_stochastic(&sol.x, 1e-6));
    }

    #[test]
    fn linear_cost_piles_everything_on_cheapest() {
        // With the linear-sum ablation and no barrier, each task just goes
        // to its fastest cluster — exactly the imbalance the paper warns
        // about.
        let t = Matrix::from_rows(&[&[1.0, 1.0, 1.0], &[2.0, 2.0, 2.0]]);
        let a = Matrix::filled(2, 3, 0.9);
        let problem = MatchingProblem::new(t, a, 0.1);
        let params = RelaxationParams {
            cost: CostKind::LinearSum,
            barrier: BarrierKind::None,
            rho: 0.001,
            ..Default::default()
        };
        let sol = solve_relaxed(&problem, &params, &SolverOptions::default());
        for j in 0..3 {
            assert!(
                sol.x[(0, j)] > 0.9,
                "task {j} should sit on the fast cluster"
            );
        }
    }

    #[test]
    fn empty_problem() {
        let problem = MatchingProblem::new(Matrix::zeros(2, 0), Matrix::zeros(2, 0), 0.5);
        let sol = solve_relaxed(
            &problem,
            &RelaxationParams::default(),
            &SolverOptions::default(),
        );
        assert!(sol.converged);
        assert_eq!(sol.x.shape(), (2, 0));
    }

    #[test]
    fn newton_matches_mirror_descent_optimum() {
        for seed in 0..6 {
            let problem = random_problem(seed, 3, 5);
            let params = RelaxationParams::default();
            let mirror = solve_relaxed(
                &problem,
                &params,
                &SolverOptions {
                    max_iters: 30_000,
                    tol: 1e-14,
                    ..Default::default()
                },
            );
            let newton = solve_relaxed_newton(&problem, &params, &NewtonOptions::default());
            assert!(newton.converged, "seed {seed}: Newton did not converge");
            // Newton must reach at least mirror descent's objective. (It
            // often does strictly better: the multiplicative mirror update
            // stalls once losing coordinates collapse, so its step-change
            // criterion can fire slightly short of the optimum.)
            assert!(
                newton.objective <= mirror.objective + 1e-5,
                "seed {seed}: Newton {} vs mirror {}",
                newton.objective,
                mirror.objective
            );
            assert!(
                newton.objective >= mirror.objective - 0.05,
                "seed {seed}: implausibly large gap — Newton {} vs mirror {}",
                newton.objective,
                mirror.objective
            );
            assert!(is_column_stochastic(&newton.x, 1e-8), "seed {seed}");
            assert!(newton.x.min().unwrap() > 0.0, "iterates must stay interior");
        }
    }

    #[test]
    fn newton_converges_in_far_fewer_iterations() {
        let problem = random_problem(11, 3, 8);
        let params = RelaxationParams::default();
        let newton = solve_relaxed_newton(&problem, &params, &NewtonOptions::default());
        assert!(newton.converged);
        assert!(
            newton.iterations <= 40,
            "second-order convergence expected, took {}",
            newton.iterations
        );
        // Mirror descent at the same accuracy takes hundreds of steps.
        let mirror = solve_relaxed(
            &problem,
            &params,
            &SolverOptions {
                max_iters: newton.iterations,
                tol: 0.0,
                ..Default::default()
            },
        );
        assert!(mirror.objective > newton.objective - 1e-9);
    }

    #[test]
    #[should_panic(expected = "convex")]
    fn newton_rejects_parallel_setting() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Matrix::from_fn(2, 3, |_, _| rng.gen_range(0.5..2.0));
        let a = Matrix::from_fn(2, 3, |_, _| rng.gen_range(0.7..1.0));
        let problem =
            MatchingProblem::with_speedup(t, a, 0.7, vec![SpeedupCurve::paper_parallel(); 2]);
        solve_relaxed_newton(
            &problem,
            &RelaxationParams::default(),
            &NewtonOptions::default(),
        );
    }

    #[test]
    fn newton_empty_problem() {
        let problem = MatchingProblem::new(Matrix::zeros(2, 0), Matrix::zeros(2, 0), 0.5);
        let sol = solve_relaxed_newton(
            &problem,
            &RelaxationParams::default(),
            &NewtonOptions::default(),
        );
        assert!(sol.converged);
    }

    /// The pre-transposition cluster-major PGD loop, kept verbatim as the
    /// bitwise oracle for the transposed hot loop in
    /// [`solve_relaxed_from_guarded`].
    fn solve_relaxed_reference(
        problem: &MatchingProblem,
        params: &RelaxationParams,
        opts: &SolverOptions,
        mut x: Matrix,
    ) -> RelaxedSolution {
        let (m, n) = (problem.clusters(), problem.tasks());
        assert_eq!(x.shape(), (m, n), "x0 shape mismatch");
        if n == 0 || m == 0 {
            let objective = objective::value(problem, params, &x);
            return RelaxedSolution {
                x,
                objective,
                iterations: 0,
                converged: true,
            };
        }
        let mut converged = false;
        let mut iterations = 0;
        let mut col = vec![0.0; m];
        for iter in 0..opts.max_iters {
            iterations = iter + 1;
            let grad = objective::grad_x(problem, params, &x);
            let mut max_change: f64 = 0.0;
            match opts.projection {
                ProjectionKind::MirrorDescent => {
                    for j in 0..n {
                        for (i, c) in col.iter_mut().enumerate() {
                            *c = x[(i, j)].max(1e-300).ln() - opts.lr * grad[(i, j)];
                        }
                        vector::softmax_inplace(&mut col);
                        for (i, &c) in col.iter().enumerate() {
                            max_change = max_change.max((c - x[(i, j)]).abs());
                            x[(i, j)] = c;
                        }
                    }
                }
                ProjectionKind::SoftmaxPaper => {
                    for j in 0..n {
                        for (i, c) in col.iter_mut().enumerate() {
                            *c = x[(i, j)] - opts.lr * grad[(i, j)];
                        }
                        vector::softmax_inplace(&mut col);
                        for (i, &c) in col.iter().enumerate() {
                            max_change = max_change.max((c - x[(i, j)]).abs());
                            x[(i, j)] = c;
                        }
                    }
                }
                ProjectionKind::Euclidean => {
                    for j in 0..n {
                        for (i, c) in col.iter_mut().enumerate() {
                            *c = x[(i, j)] - opts.lr * grad[(i, j)];
                        }
                        project_simplex(&mut col);
                        for (i, &c) in col.iter().enumerate() {
                            max_change = max_change.max((c - x[(i, j)]).abs());
                            x[(i, j)] = c;
                        }
                    }
                }
            }
            if max_change < opts.tol {
                converged = true;
                break;
            }
        }
        let objective = objective::value(problem, params, &x);
        RelaxedSolution {
            x,
            objective,
            iterations,
            converged,
        }
    }

    #[test]
    fn transposed_solver_is_bitwise_identical() {
        use crate::problem::CapacityConstraint;
        for (seed, parallel, with_cap) in
            [(21u64, false, false), (22, true, false), (23, false, true)]
        {
            let mut problem = random_problem(seed, 3, 6);
            if parallel {
                problem.speedup = vec![SpeedupCurve::paper_parallel(); 3];
            }
            if with_cap {
                let mut rng = StdRng::seed_from_u64(seed + 50);
                problem.capacity = Some(CapacityConstraint {
                    usage: Matrix::from_fn(3, 6, |_, _| rng.gen_range(0.1..1.0)),
                    limits: vec![4.0, 5.0, 6.0],
                });
            }
            let params = RelaxationParams::default();
            for proj in [
                ProjectionKind::MirrorDescent,
                ProjectionKind::SoftmaxPaper,
                ProjectionKind::Euclidean,
            ] {
                let opts = SolverOptions {
                    projection: proj,
                    max_iters: 120,
                    ..Default::default()
                };
                let x0 = uniform_init(3, 6);
                let reference = solve_relaxed_reference(&problem, &params, &opts, x0.clone());
                let sol = solve_relaxed_from(&problem, &params, &opts, x0);
                assert_eq!(sol.iterations, reference.iterations, "{proj:?} seed {seed}");
                assert_eq!(sol.converged, reference.converged, "{proj:?} seed {seed}");
                for (idx, (a, b)) in sol
                    .x
                    .as_slice()
                    .iter()
                    .zip(reference.x.as_slice())
                    .enumerate()
                {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{proj:?} seed {seed} entry {idx}: {a} vs {b}"
                    );
                }
                assert_eq!(sol.objective.to_bits(), reference.objective.to_bits());
            }
        }
    }
}
