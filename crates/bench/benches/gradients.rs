//! Criterion benchmarks for the two gradient paths through the matching
//! layer: implicit KKT differentiation (MFCP-AD) vs zeroth-order forward
//! gradients (MFCP-FG) — the compute side of the Theorem 3 trade-off
//! (`O(K₁MN)` per re-solve, `S·K₂` re-solves per estimate vs one dense
//! `(3MN+N)`-ish KKT solve).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mfcp_linalg::Matrix;
use mfcp_optim::kkt::implicit_gradients;
use mfcp_optim::solver::{solve_relaxed, SolverOptions};
use mfcp_optim::zeroth::{estimate_gradient, ZerothOrderOptions};
use mfcp_optim::{MatchingProblem, RelaxationParams};
use mfcp_parallel::ParallelConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn setup(m: usize, n: usize) -> (MatchingProblem, RelaxationParams, Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(7);
    let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..3.0));
    let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.7..1.0));
    let problem = MatchingProblem::new(t, a, 0.78);
    let params = RelaxationParams::default();
    let sol = solve_relaxed(&problem, &params, &SolverOptions::default());
    let dl_dx = Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));
    (problem, params, sol.x, dl_dx)
}

fn bench_kkt(c: &mut Criterion) {
    let mut group = c.benchmark_group("kkt_implicit_gradients");
    for &(m, n) in &[(3usize, 5usize), (3, 15), (3, 25), (5, 20)] {
        let (problem, params, x, dl_dx) = setup(m, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("M{m}xN{n}")),
            &(problem, params, x, dl_dx),
            |b, (p, prm, x, g)| b.iter(|| black_box(implicit_gradients(p, prm, x, g).unwrap())),
        );
    }
    group.finish();
}

fn bench_zeroth_order_samples(c: &mut Criterion) {
    let mut group = c.benchmark_group("zeroth_order_by_samples");
    let (problem, params, x, dl_dx) = setup(3, 5);
    let theta: Vec<f64> = problem.times.row(0).to_vec();
    for &s in &[2usize, 8, 32] {
        let opts = ZerothOrderOptions {
            delta: 0.05,
            samples: s,
            parallel: ParallelConfig::default(),
        };
        group.bench_with_input(BenchmarkId::from_parameter(s), &opts, |b, o| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(3);
                let solve = |th: &[f64]| {
                    let p = problem.with_time_row(0, th);
                    solve_relaxed(&p, &params, &SolverOptions::default()).x
                };
                black_box(estimate_gradient(&theta, &x, &dl_dx, solve, o, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_kkt, bench_zeroth_order_samples
}
criterion_main!(benches);
