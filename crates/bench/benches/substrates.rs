//! Criterion benchmarks for the substrate crates: blocked/parallel
//! matmul, LU factorization + solve, MLP forward/backward, and the
//! KKT implicit-gradient paths (dense saddle LU vs structured
//! Woodbury/Schur elimination) at training-round sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mfcp_autodiff::Graph;
use mfcp_linalg::{lu::Lu, MatmulOptions, Matrix};
use mfcp_nn::{Activation, Mlp};
use mfcp_optim::kkt::{self, KktWorkspace};
use mfcp_optim::{MatchingProblem, RelaxationParams};
use mfcp_parallel::ParallelConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
    Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = StdRng::seed_from_u64(1);
    for &n in &[64usize, 128, 256] {
        let a = random_matrix(&mut rng, n, n);
        let b = random_matrix(&mut rng, n, n);
        group.bench_with_input(BenchmarkId::new("serial", n), &(&a, &b), |bch, (a, b)| {
            let opts = MatmulOptions {
                parallel: ParallelConfig::sequential(),
                ..Default::default()
            };
            bch.iter(|| black_box(a.matmul_with(b, &opts).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &(&a, &b), |bch, (a, b)| {
            let opts = MatmulOptions {
                parallel_row_cutoff: 1,
                ..Default::default()
            };
            bch.iter(|| black_box(a.matmul_with(b, &opts).unwrap()))
        });
    }
    group.finish();
}

fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu_factor_solve");
    let mut rng = StdRng::seed_from_u64(2);
    for &n in &[20usize, 50, 100] {
        let a = random_matrix(&mut rng, n, n);
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &(&a, &b), |bch, (a, b)| {
            bch.iter(|| black_box(Lu::factor(a).unwrap().solve(b).unwrap()))
        });
    }
    group.finish();
}

fn bench_mlp(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlp_forward_backward");
    let mut rng = StdRng::seed_from_u64(3);
    let mlp = Mlp::new(
        &[18, 32, 32, 1],
        Activation::Relu,
        Activation::Identity,
        &mut rng,
    );
    for &batch in &[5usize, 32, 128] {
        let x = random_matrix(&mut rng, batch, 18);
        group.bench_with_input(BenchmarkId::new("forward", batch), &x, |b, x| {
            b.iter(|| black_box(mlp.predict(x)))
        });
        group.bench_with_input(BenchmarkId::new("forward_backward", batch), &x, |b, x| {
            b.iter(|| {
                let mut g = Graph::new();
                let xi = g.input(x.clone());
                let pass = mlp.forward(&mut g, xi);
                let s = g.sum(pass.output);
                g.backward(s);
                black_box(mlp.grads(&g, &pass))
            })
        });
    }
    group.finish();
}

/// One interior instance at cluster count `m`, task count `n`: a
/// column-stochastic iterate and a random upstream gradient.
fn kkt_instance(rng: &mut StdRng, m: usize, n: usize) -> (MatchingProblem, Matrix, Matrix) {
    let times = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..3.0));
    let rel = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.8..0.999));
    let problem = MatchingProblem::new(times, rel, 0.5);
    let mut x = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.1..1.0));
    for j in 0..n {
        let col: f64 = (0..m).map(|i| x[(i, j)]).sum();
        for i in 0..m {
            x[(i, j)] /= col;
        }
    }
    let dl_dx = Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));
    (problem, x, dl_dx)
}

fn bench_kkt_gradients(c: &mut Criterion) {
    let mut group = c.benchmark_group("kkt_gradients");
    let mut rng = StdRng::seed_from_u64(4);
    let params = RelaxationParams::default();
    // (M, N) at paper-experiment sizes; the dense saddle system is
    // (MN + N) x (MN + N), so the 10 x 100 point is a 1100-dim LU.
    for &(m, n) in &[(4usize, 24usize), (10, 50), (10, 100)] {
        let (problem, x, dl_dx) = kkt_instance(&mut rng, m, n);
        let id = format!("{m}x{n}");
        group.bench_with_input(
            BenchmarkId::new("structured", &id),
            &(&problem, &x, &dl_dx),
            |b, (problem, x, dl_dx)| {
                let mut ws = KktWorkspace::new();
                b.iter(|| {
                    black_box(
                        kkt::implicit_gradients_with(problem, &params, x, dl_dx, &mut ws).unwrap(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dense", &id),
            &(&problem, &x, &dl_dx),
            |b, (problem, x, dl_dx)| {
                b.iter(|| {
                    black_box(kkt::implicit_gradients_dense(problem, &params, x, dl_dx).unwrap())
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_lu, bench_mlp, bench_kkt_gradients
}
criterion_main!(benches);
