//! Criterion benchmarks for the substrate crates: blocked/parallel
//! matmul, LU factorization + solve, and MLP forward/backward.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mfcp_autodiff::Graph;
use mfcp_linalg::{lu::Lu, MatmulOptions, Matrix};
use mfcp_nn::{Activation, Mlp};
use mfcp_parallel::ParallelConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
    Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = StdRng::seed_from_u64(1);
    for &n in &[64usize, 128, 256] {
        let a = random_matrix(&mut rng, n, n);
        let b = random_matrix(&mut rng, n, n);
        group.bench_with_input(BenchmarkId::new("serial", n), &(&a, &b), |bch, (a, b)| {
            let opts = MatmulOptions {
                parallel: ParallelConfig::sequential(),
                ..Default::default()
            };
            bch.iter(|| black_box(a.matmul_with(b, &opts).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &(&a, &b), |bch, (a, b)| {
            let opts = MatmulOptions {
                parallel_row_cutoff: 1,
                ..Default::default()
            };
            bch.iter(|| black_box(a.matmul_with(b, &opts).unwrap()))
        });
    }
    group.finish();
}

fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu_factor_solve");
    let mut rng = StdRng::seed_from_u64(2);
    for &n in &[20usize, 50, 100] {
        let a = random_matrix(&mut rng, n, n);
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &(&a, &b), |bch, (a, b)| {
            bch.iter(|| black_box(Lu::factor(a).unwrap().solve(b).unwrap()))
        });
    }
    group.finish();
}

fn bench_mlp(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlp_forward_backward");
    let mut rng = StdRng::seed_from_u64(3);
    let mlp = Mlp::new(
        &[18, 32, 32, 1],
        Activation::Relu,
        Activation::Identity,
        &mut rng,
    );
    for &batch in &[5usize, 32, 128] {
        let x = random_matrix(&mut rng, batch, 18);
        group.bench_with_input(BenchmarkId::new("forward", batch), &x, |b, x| {
            b.iter(|| black_box(mlp.predict(x)))
        });
        group.bench_with_input(BenchmarkId::new("forward_backward", batch), &x, |b, x| {
            b.iter(|| {
                let mut g = Graph::new();
                let xi = g.input(x.clone());
                let pass = mlp.forward(&mut g, xi);
                let s = g.sum(pass.output);
                g.backward(s);
                black_box(mlp.grads(&g, &pass))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_lu, bench_mlp
}
criterion_main!(benches);
