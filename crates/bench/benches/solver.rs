//! Criterion benchmarks for the matching solvers: Algorithm 1 across
//! problem sizes and projection rules, the exact branch-and-bound, and
//! the full deployment pipeline (relax → round → repair → local search).
//!
//! These back the complexity claims of §3.5: each Algorithm 1 iteration
//! is O(MN), so relaxed-solve time should scale linearly in M·N at a
//! fixed iteration budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mfcp_linalg::Matrix;
use mfcp_optim::exact::{solve_exact, ExactOptions};
use mfcp_optim::rounding::solve_discrete;
use mfcp_optim::solver::{solve_relaxed, ProjectionKind, SolverOptions};
use mfcp_optim::{MatchingProblem, RelaxationParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_problem(seed: u64, m: usize, n: usize) -> MatchingProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..3.0));
    let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.7..1.0));
    MatchingProblem::new(t, a, 0.78)
}

fn bench_relaxed_solver_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("relaxed_solver_scaling");
    let opts = SolverOptions {
        max_iters: 200,
        tol: 0.0, // fixed iteration budget to expose O(MN) per-iter cost
        ..Default::default()
    };
    let params = RelaxationParams::default();
    for &(m, n) in &[(3usize, 5usize), (3, 25), (3, 100), (8, 50), (16, 100)] {
        let problem = random_problem(1, m, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("M{m}xN{n}")),
            &problem,
            |b, p| b.iter(|| black_box(solve_relaxed(p, &params, &opts))),
        );
    }
    group.finish();
}

fn bench_projection_kinds(c: &mut Criterion) {
    let mut group = c.benchmark_group("projection_kinds");
    let problem = random_problem(2, 3, 25);
    let params = RelaxationParams::default();
    for proj in [
        ProjectionKind::MirrorDescent,
        ProjectionKind::SoftmaxPaper,
        ProjectionKind::Euclidean,
    ] {
        let opts = SolverOptions {
            max_iters: 200,
            tol: 0.0,
            projection: proj,
            ..Default::default()
        };
        group.bench_function(format!("{proj:?}"), |b| {
            b.iter(|| black_box(solve_relaxed(&problem, &params, &opts)))
        });
    }
    group.finish();
}

fn bench_exact_vs_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_vs_pipeline");
    for &n in &[6usize, 12, 18] {
        let problem = random_problem(3, 3, n);
        group.bench_with_input(BenchmarkId::new("branch_and_bound", n), &problem, |b, p| {
            b.iter(|| black_box(solve_exact(p, &ExactOptions::default())))
        });
        group.bench_with_input(
            BenchmarkId::new("relax_round_search", n),
            &problem,
            |b, p| {
                b.iter(|| {
                    black_box(solve_discrete(
                        p,
                        &RelaxationParams::default(),
                        &SolverOptions::default(),
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_relaxed_solver_scaling, bench_projection_kinds, bench_exact_vs_pipeline
}
criterion_main!(benches);
