//! First-order (Algorithm 1 / mirror descent) vs second-order (damped
//! Newton on the barrier problem) relaxed matching solvers: per-solve
//! cost at equal solution quality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mfcp_linalg::Matrix;
use mfcp_optim::solver::{solve_relaxed, solve_relaxed_newton, NewtonOptions, SolverOptions};
use mfcp_optim::{MatchingProblem, RelaxationParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_problem(seed: u64, m: usize, n: usize) -> MatchingProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..3.0));
    let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.7..1.0));
    MatchingProblem::new(t, a, 0.78)
}

fn bench_newton_vs_mirror(c: &mut Criterion) {
    let mut group = c.benchmark_group("newton_vs_mirror");
    let params = RelaxationParams::default();
    for &(m, n) in &[(3usize, 5usize), (3, 15), (5, 25)] {
        let problem = random_problem(1, m, n);
        group.bench_with_input(
            BenchmarkId::new("mirror_descent_tight", format!("M{m}xN{n}")),
            &problem,
            |b, p| {
                let opts = SolverOptions {
                    max_iters: 5000,
                    tol: 1e-12,
                    ..Default::default()
                };
                b.iter(|| black_box(solve_relaxed(p, &params, &opts)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("newton", format!("M{m}xN{n}")),
            &problem,
            |b, p| {
                b.iter(|| black_box(solve_relaxed_newton(p, &params, &NewtonOptions::default())))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_newton_vs_mirror
}
criterion_main!(benches);
