//! End-to-end flight-recorder check: a real training round must leave a
//! trace that exports as loadable Chrome trace-event JSON.

use mfcp_bench::report::{run_report, ReportConfig};
use mfcp_obs::json::{self, Json};

#[test]
fn training_round_trace_exports_as_chrome_json() {
    let cfg = ReportConfig {
        tasks: 8,
        rounds: 2,
        seed: 5,
    };
    mfcp_obs::trace::set_recording(true);
    let _snap = run_report(&cfg);
    let trace = mfcp_obs::trace::drain();
    assert!(
        !trace.events.is_empty(),
        "a full workload pass must leave flight-recorder events"
    );

    let chrome = trace.to_chrome_json();
    let doc = json::parse(&chrome).unwrap_or_else(|e| panic!("invalid Chrome JSON: {e}"));
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Every event row carries the fields a trace viewer requires, and
    // every ph is one of the kinds the exporter emits.
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph");
        assert!(
            matches!(ph, "B" | "E" | "i" | "M"),
            "unexpected phase {ph:?}"
        );
        assert!(e.get("pid").and_then(Json::as_f64).is_some());
        assert!(e.get("tid").is_some());
        if ph != "M" {
            assert!(e.get("ts").and_then(Json::as_f64).is_some());
        }
    }

    // The workload's known hot paths all surface by name: training
    // rounds (span-emitted), solver ladder attempts, PGD markers, pool
    // jobs, and fault-replay attempts.
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    for expected in [
        "round",
        "robust.primary",
        "pgd.iter",
        "pool.enqueue",
        "pool.job",
        "fault.attempt",
        "simulate_with_faults",
    ] {
        assert!(
            names.iter().any(|n| n.contains(expected)),
            "expected an event matching {expected:?} in the trace, got names like {:?}",
            &names[..names.len().min(40)]
        );
    }

    // B/E events balance per tid after the exporter's re-balancing pass.
    use std::collections::HashMap;
    let mut depth: HashMap<String, i64> = HashMap::new();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).unwrap();
        let tid = format!("{:?}", e.get("tid"));
        match ph {
            "B" => *depth.entry(tid).or_insert(0) += 1,
            "E" => {
                let d = depth.entry(tid.clone()).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "E without a matching B on tid {tid}");
            }
            _ => {}
        }
    }
    for (tid, d) in depth {
        assert_eq!(d, 0, "unbalanced B/E on tid {tid}");
    }
}
