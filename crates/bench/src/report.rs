//! Workload behind the `report` binary: one pass through every
//! instrumented layer of the pipeline, sized for a CI smoke run.
//!
//! The stages mirror `fault_demo` — solver fallback ladder, guarded
//! training, thread-pool burst, fault-injected execution — but are
//! parameterized so CI can run a tiny configuration and the profile
//! snapshot still shows non-zero activity in every subsystem:
//!
//! * solver attempts (`optim.robust.attempts`),
//! * training epochs (`train.supervised.epochs`),
//! * pool jobs (`parallel.pool.jobs`),
//! * re-matching attempts (`platform.faults.rematch`).
//!
//! [`measure_overhead`] A/Bs the same workload with recording enabled
//! vs. [`mfcp_obs::set_enabled`]`(false)` to bound the instrumentation
//! cost (the <5% budget recorded in DESIGN.md).

use mfcp_core::train::{train_mfcp, MfcpTrainConfig, TsmTrainConfig};
use mfcp_linalg::Matrix;
use mfcp_optim::rounding::solve_discrete;
use mfcp_optim::solver::SolverOptions;
use mfcp_optim::{BarrierKind, MatchingProblem, RelaxationParams, RobustSolver};
use mfcp_parallel::ThreadPool;
use mfcp_platform::dataset::{NoiseConfig, PlatformDataset};
use mfcp_platform::embedding::FeatureEmbedder;
use mfcp_platform::fault::{simulate_with_faults, ClusterOutage, FaultPlan};
use mfcp_platform::settings::{ClusterPool, Setting};
use mfcp_platform::task::TaskGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Size knobs for one report workload pass.
#[derive(Debug, Clone)]
pub struct ReportConfig {
    /// Tasks in the training dataset and the fault-injected round.
    pub tasks: usize,
    /// Decision-focused training rounds.
    pub rounds: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ReportConfig {
    fn default() -> Self {
        ReportConfig {
            tasks: 16,
            rounds: 3,
            seed: 7,
        }
    }
}

/// Stage 1: a degenerate barrier instance (`eps = 0`, infeasible uniform
/// start) that forces the robust solver down its fallback ladder.
pub(crate) fn solver_stage(cfg: &ReportConfig) {
    let n = cfg.tasks.max(2);
    let problem = MatchingProblem::new(Matrix::filled(2, n, 1.0), Matrix::filled(2, n, 0.7), 0.95);
    let params = RelaxationParams {
        barrier: BarrierKind::Log { eps: 0.0 },
        ..Default::default()
    };
    let solver = RobustSolver::new(params);
    let _ = solver.solve(&problem);
}

/// Stage 2: a tiny guarded training run with one poisoned measurement
/// (exercising rollbacks) and periodic checkpoints.
pub(crate) fn training_stage(cfg: &ReportConfig) {
    let model = ClusterPool::standard().setting(Setting::A);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut train = PlatformDataset::generate(
        &model,
        &FeatureEmbedder::bottlenecked_platform(),
        &TaskGenerator::default(),
        cfg.tasks.max(8),
        &NoiseConfig::default(),
        &mut rng,
    );
    // One corrupt probe so the loss-spike guard has something to catch.
    let poisoned = 3.min(train.times.cols().saturating_sub(1));
    train.times[(0, poisoned)] = f64::NAN;
    let ckpt_dir = std::env::temp_dir().join(format!("mfcp-report-ckpt-{}", cfg.seed));
    let train_cfg = MfcpTrainConfig {
        warm_start: TsmTrainConfig {
            hidden: vec![8],
            epochs: 30,
            ..Default::default()
        },
        rounds: cfg.rounds,
        round_size: 4,
        gamma: 0.8,
        // Validation builds exact matching problems from *measured*
        // times, which asserts finiteness — incompatible with the
        // poisoned probe above (fault_demo disables it for the same
        // reason).
        validation_rounds: 0,
        checkpoint_every: cfg.rounds.max(1),
        checkpoint_dir: Some(ckpt_dir.clone()),
        ..Default::default()
    };
    let _ = train_mfcp(&train, &train_cfg, cfg.seed.wrapping_add(1));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

/// Stage 3: a burst of jobs through the [`ThreadPool`] (the pool is not
/// on the training path, so the report drives it directly).
pub(crate) fn pool_stage(cfg: &ReportConfig) {
    let pool = ThreadPool::new(2);
    let hits = Arc::new(AtomicUsize::new(0));
    for _ in 0..cfg.tasks.max(4) {
        let hits = Arc::clone(&hits);
        pool.execute(move || {
            hits.fetch_add(1, Ordering::Relaxed);
        });
    }
    let _ = pool.join();
}

/// Stage 4: a fault-injected execution round with a mid-run outage and
/// stragglers, exercising dispatch-time migration and failure re-queues.
pub(crate) fn fault_stage(cfg: &ReportConfig) {
    let n = cfg.tasks.max(4);
    let t = Matrix::from_fn(2, n, |i, j| 1.0 + 0.1 * ((i + j) % 5) as f64);
    let a = Matrix::filled(2, n, 0.9);
    let problem = MatchingProblem::new(t, a, 0.8);
    let assignment = solve_discrete(
        &problem,
        &RelaxationParams::default(),
        &SolverOptions::default(),
    );
    let plan = FaultPlan::none()
        .with_outage(ClusterOutage::new(0, 0.5, 30.0))
        .with_stragglers(0.2, 3.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(2));
    let _ = simulate_with_faults(&problem, &assignment, &plan, 3, &mut rng);
}

/// Runs all four stages once under whatever recording state is current.
pub fn run_workload(cfg: &ReportConfig) {
    let _span = mfcp_obs::span("report_workload");
    solver_stage(cfg);
    training_stage(cfg);
    pool_stage(cfg);
    fault_stage(cfg);
}

/// Resets the registry, runs the workload with recording on, and returns
/// the resulting snapshot.
pub fn run_report(cfg: &ReportConfig) -> mfcp_obs::Snapshot {
    mfcp_obs::set_enabled(true);
    mfcp_obs::reset();
    run_workload(cfg);
    mfcp_obs::snapshot()
}

/// Result of an enabled-vs-disabled A/B timing run.
#[derive(Debug, Clone)]
pub struct OverheadReport {
    /// Total wall time across repetitions with recording enabled.
    pub enabled_secs: f64,
    /// Total wall time across repetitions with recording disabled.
    pub disabled_secs: f64,
    /// Workload repetitions per arm.
    pub reps: usize,
}

impl OverheadReport {
    /// Relative overhead `(enabled - disabled) / disabled` (0 when the
    /// disabled arm measured as instantaneous, or when enabled ran
    /// faster — noise, not a negative cost).
    pub fn fraction(&self) -> f64 {
        if self.disabled_secs <= 0.0 {
            return 0.0;
        }
        ((self.enabled_secs - self.disabled_secs) / self.disabled_secs).max(0.0)
    }
}

/// Times `reps` workload passes with recording enabled, then `reps` with
/// recording disabled (after one untimed warm-up pass), restoring the
/// enabled state before returning.
pub fn measure_overhead(cfg: &ReportConfig, reps: usize) -> OverheadReport {
    let reps = reps.max(1);
    mfcp_obs::set_enabled(true);
    run_workload(cfg); // warm-up: page in code, spawn nothing lasting
    mfcp_obs::reset();

    let start = Instant::now();
    for _ in 0..reps {
        run_workload(cfg);
    }
    let enabled_secs = start.elapsed().as_secs_f64();

    mfcp_obs::set_enabled(false);
    let start = Instant::now();
    for _ in 0..reps {
        run_workload(cfg);
    }
    let disabled_secs = start.elapsed().as_secs_f64();
    mfcp_obs::set_enabled(true);

    OverheadReport {
        enabled_secs,
        disabled_secs,
        reps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_report_covers_every_subsystem() {
        let cfg = ReportConfig {
            tasks: 8,
            rounds: 2,
            seed: 3,
        };
        let snap = run_report(&cfg);
        for name in [
            "optim.robust.attempts",
            "train.supervised.epochs",
            "parallel.pool.jobs",
            "platform.faults.rematch",
            "platform.faults.attempts",
            "train.rounds",
        ] {
            let v = snap.counters.get(name).copied().unwrap_or(0);
            assert!(v > 0, "counter {name} should be non-zero, got {v}");
        }
        assert!(
            snap.spans.values().any(|s| s.total_secs > 0.0),
            "at least one span should have accumulated wall time"
        );
        let json = snap.to_json();
        assert!(json.contains("\"optim.robust.attempts\""));
        assert!(snap.to_text().contains("report_workload"));
    }
}
