//! Profile report for the solve-and-train pipeline.
//!
//! Runs one observability workload pass (solver fallback ladder, guarded
//! training, thread-pool burst, fault-injected execution — see
//! `mfcp_bench::report`), prints the human-readable profile tree and
//! metric summary, and writes the JSON snapshot for machine consumption
//! (CI uploads it as a workflow artifact).
//!
//! Usage:
//!   cargo run --release -p mfcp-bench --bin report -- \
//!     [--tasks N] [--rounds N] [--seed N] [--out PATH] [--overhead [REPS]] \
//!     [--trace PATH]
//!
//! `--overhead` additionally A/Bs the workload with recording enabled
//! vs. disabled and prints the relative instrumentation cost.
//! `--trace PATH` exports the workload's flight-recorder contents as
//! Chrome trace-event JSON (loadable in chrome://tracing or Perfetto).

use mfcp_bench::report::{measure_overhead, run_report, ReportConfig};
use std::path::PathBuf;

struct Args {
    cfg: ReportConfig,
    out: PathBuf,
    overhead_reps: Option<usize>,
    trace: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut cfg = ReportConfig::default();
    let mut out = PathBuf::from("results/profile.json");
    let mut overhead_reps = None;
    let mut trace = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take_value = |i: usize| -> Result<&str, String> {
            argv.get(i + 1)
                .map(String::as_str)
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--tasks" => {
                cfg.tasks = take_value(i)?
                    .parse()
                    .map_err(|e| format!("--tasks: {e}"))?;
                i += 2;
            }
            "--rounds" => {
                cfg.rounds = take_value(i)?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?;
                i += 2;
            }
            "--seed" => {
                cfg.seed = take_value(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--out" => {
                out = PathBuf::from(take_value(i)?);
                i += 2;
            }
            "--trace" => {
                trace = Some(PathBuf::from(take_value(i)?));
                i += 2;
            }
            "--overhead" => {
                // Optional numeric value; defaults to 3 repetitions.
                match argv.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                    Some(reps) => {
                        overhead_reps = Some(reps.max(1));
                        i += 2;
                    }
                    None => {
                        overhead_reps = Some(3);
                        i += 1;
                    }
                }
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Args {
        cfg,
        out,
        overhead_reps,
        trace,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("report: {msg}");
            eprintln!(
                "usage: report [--tasks N] [--rounds N] [--seed N] [--out PATH] \
                 [--overhead [REPS]] [--trace PATH]"
            );
            std::process::exit(2);
        }
    };

    println!(
        "running report workload: tasks {} rounds {} seed {}",
        args.cfg.tasks, args.cfg.rounds, args.cfg.seed
    );
    let snap = run_report(&args.cfg);
    print!("{}", snap.to_text());

    if let Some(trace_path) = &args.trace {
        let trace = mfcp_obs::trace::drain();
        if let Some(dir) = trace_path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("report: cannot create {}: {e}", dir.display());
                    std::process::exit(1);
                }
            }
        }
        if let Err(e) = std::fs::write(trace_path, trace.to_chrome_json()) {
            eprintln!("report: cannot write {}: {e}", trace_path.display());
            std::process::exit(1);
        }
        println!(
            "wrote {} ({} events, {} dropped)",
            trace_path.display(),
            trace.events.len(),
            trace.dropped
        );
    }

    if let Some(dir) = args.out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("report: cannot create {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = std::fs::write(&args.out, snap.to_json()) {
        eprintln!("report: cannot write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    println!("wrote {}", args.out.display());

    if let Some(reps) = args.overhead_reps {
        println!("measuring instrumentation overhead ({reps} reps per arm)...");
        let o = measure_overhead(&args.cfg, reps);
        println!(
            "overhead: enabled {:.3}s vs disabled {:.3}s over {} reps -> {:.2}%",
            o.enabled_secs,
            o.disabled_secs,
            o.reps,
            o.fraction() * 100.0
        );
    }
}
