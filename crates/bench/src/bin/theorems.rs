//! Empirical validation of the paper's theorems:
//!
//! * **Theorem 1** — the smoothed makespan converges to the true max at
//!   rate `log(M)/β`.
//! * **Theorem 3** — the zeroth-order gradient error decomposes into a
//!   bias term growing with Δ and a variance term shrinking with S·Δ²,
//!   with a bias/variance-optimal Δ*.
//! * **Theorem 4** — Algorithm 1 converges linearly in the convex case.
//!
//! Usage: `cargo run -p mfcp-bench --release --bin theorems`

use mfcp_bench::write_csv;
use mfcp_linalg::{vector, Matrix};
use mfcp_optim::kkt::implicit_gradients;
use mfcp_optim::objective::{self, RelaxationParams};
use mfcp_optim::solver::{solve_relaxed, SolverOptions};
use mfcp_optim::zeroth::{estimate_gradient, ZerothOrderOptions};
use mfcp_optim::{BarrierKind, MatchingProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_problem(seed: u64, m: usize, n: usize) -> MatchingProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..2.5));
    let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.75..1.0));
    MatchingProblem::new(t, a, 0.78)
}

fn theorem1() -> Vec<String> {
    println!("\n== Theorem 1: smooth-max gap vs β (bound: log(M)/β) ==");
    println!("{:>8} {:>14} {:>14}", "beta", "gap", "log(M)/beta");
    let problem = random_problem(1, 4, 6);
    let mut rng = StdRng::seed_from_u64(2);
    let mut x = Matrix::from_fn(4, 6, |_, _| rng.gen_range(0.05..1.0));
    for j in 0..6 {
        let s: f64 = (0..4).map(|i| x[(i, j)]).sum();
        for i in 0..4 {
            x[(i, j)] /= s;
        }
    }
    let truth = objective::true_cost(&problem, &x);
    let mut lines = Vec::new();
    for beta in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
        let params = RelaxationParams {
            beta,
            barrier: BarrierKind::None,
            rho: 0.0,
            ..Default::default()
        };
        let gap = objective::smooth_cost(&problem, &params, &x) - truth;
        let bound = (4.0f64).ln() / beta;
        println!("{beta:>8.1} {gap:>14.6} {bound:>14.6}");
        assert!(gap >= -1e-9 && gap <= bound + 1e-9, "Theorem 1 violated");
        lines.push(format!("{beta},{gap:.8},{bound:.8}"));
    }
    lines
}

fn theorem3() -> Vec<String> {
    println!("\n== Theorem 3: zeroth-order gradient error vs Δ and S ==");
    let problem = random_problem(3, 3, 4);
    let params = RelaxationParams::default();
    let tight = SolverOptions {
        max_iters: 8000,
        tol: 1e-13,
        ..Default::default()
    };
    let sol = solve_relaxed(&problem, &params, &tight);
    let mut rng = StdRng::seed_from_u64(4);
    let c = Matrix::from_fn(3, 4, |_, _| rng.gen_range(-1.0..1.0));
    let analytic = implicit_gradients(&problem, &params, &sol.x, &c).unwrap();
    let ad_row: Vec<f64> = analytic.dl_dt.row(0).to_vec();
    let theta: Vec<f64> = problem.times.row(0).to_vec();
    let solve = |th: &[f64]| {
        let p = problem.with_time_row(0, th);
        solve_relaxed(&p, &params, &tight).x
    };
    let err_for = |delta: f64, samples: usize| -> f64 {
        let reps = 5;
        let mut total = 0.0;
        for rep in 0..reps {
            let mut rng = StdRng::seed_from_u64(50 + rep);
            let zo = ZerothOrderOptions {
                delta,
                samples,
                ..Default::default()
            };
            let fg = estimate_gradient(&theta, &sol.x, &c, solve, &zo, &mut rng);
            let diff: Vec<f64> = fg.iter().zip(&ad_row).map(|(f, a)| f - a).collect();
            total += vector::norm2(&diff).powi(2);
        }
        total / reps as f64
    };
    let mut lines = Vec::new();
    println!("{:>8} {:>6} {:>14}", "delta", "S", "MSE vs analytic");
    for &delta in &[0.005, 0.02, 0.08, 0.32] {
        for &s in &[4usize, 32, 256] {
            let mse = err_for(delta, s);
            println!("{delta:>8.3} {s:>6} {mse:>14.6}");
            lines.push(format!("{delta},{s},{mse:.8}"));
        }
    }
    println!("(expect: error falls with S at fixed Δ; at fixed large S the");
    println!(" best Δ is interior — too small amplifies solver noise, too");
    println!(" large incurs curvature bias — matching Δ* = (2σ²/β²S)^¼)");
    lines
}

fn theorem4() -> Vec<String> {
    println!("\n== Theorem 4: convex-case convergence of Algorithm 1 ==");
    let problem = random_problem(5, 3, 6);
    let params = RelaxationParams::default();
    let reference = solve_relaxed(
        &problem,
        &params,
        &SolverOptions {
            max_iters: 50_000,
            tol: 0.0,
            ..Default::default()
        },
    );
    println!("{:>8} {:>16}", "iters", "objective gap");
    let mut lines = Vec::new();
    let mut prev_gap = f64::INFINITY;
    for iters in [10, 20, 40, 80, 160, 320, 640] {
        let sol = solve_relaxed(
            &problem,
            &params,
            &SolverOptions {
                max_iters: iters,
                tol: 0.0,
                ..Default::default()
            },
        );
        let gap = (sol.objective - reference.objective).max(0.0);
        println!("{iters:>8} {gap:>16.3e}");
        assert!(gap <= prev_gap + 1e-12, "gap must be non-increasing");
        prev_gap = gap;
        lines.push(format!("{iters},{gap:.3e}"));
    }
    println!("(geometric decay of the gap = linear convergence)");
    lines
}

fn theorem5() -> Vec<String> {
    println!("\n== Theorem 5: non-convex stationarity of Algorithm 1 ==");
    // Parallel-execution (non-convex) objective; track the running mean of
    // the squared projected-gradient norm, which Theorem 5 bounds by
    // 2(F(X0) − F_inf)/(ηk) + lησ² (σ = 0 here: exact gradients).
    use mfcp_optim::solver::uniform_init;
    use mfcp_optim::SpeedupCurve;
    let mut rng = StdRng::seed_from_u64(11);
    let (m, n) = (3, 8);
    let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..2.5));
    let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.75..1.0));
    let problem =
        MatchingProblem::with_speedup(t, a, 0.78, vec![SpeedupCurve::paper_parallel(); m]);
    let params = RelaxationParams::default();
    let eta = 0.05;
    let f0 = objective::value(&problem, &params, &uniform_init(m, n));
    // Run mirror descent manually to record per-iterate gradient norms.
    let mut x = uniform_init(m, n);
    let mut lines = Vec::new();
    let mut sq_sum = 0.0;
    println!(
        "{:>8} {:>18} {:>18}",
        "k", "mean ||G_k||²", "2(F0-Finf)/(ηk)"
    );
    let f_inf = {
        // Cheap lower bound on F over the feasible set: long optimized run.
        let sol = solve_relaxed(
            &problem,
            &params,
            &SolverOptions {
                max_iters: 20_000,
                lr: eta,
                tol: 0.0,
                ..Default::default()
            },
        );
        sol.objective
    };
    for k in 1..=640usize {
        let grad = objective::grad_x(&problem, &params, &x);
        // One mirror step; the convergence measure for constrained
        // first-order methods is the gradient mapping
        // G_k = (X_k − X_{k+1})/η, whose mean square Theorem 5 bounds.
        let mut col = vec![0.0; m];
        let mut sq = 0.0;
        for j in 0..n {
            for (i, c) in col.iter_mut().enumerate() {
                *c = x[(i, j)].max(1e-300).ln() - eta * grad[(i, j)];
            }
            mfcp_linalg::vector::softmax_inplace(&mut col);
            for (i, &c) in col.iter().enumerate() {
                sq += ((x[(i, j)] - c) / eta).powi(2);
                x[(i, j)] = c;
            }
        }
        sq_sum += sq;
        if k.is_power_of_two() && k >= 8 {
            let mean_sq = sq_sum / k as f64;
            let bound = 2.0 * (f0 - f_inf).max(0.0) / (eta * k as f64);
            println!("{k:>8} {mean_sq:>18.6e} {bound:>18.6e}");
            lines.push(format!("{k},{mean_sq:.6e},{bound:.6e}"));
        }
    }
    println!("(mean squared gradient mapping decays ~1/k, tracking the bound's shape)");
    lines
}

fn main() {
    let t1 = theorem1();
    let t3 = theorem3();
    let t4 = theorem4();
    let t5 = theorem5();
    write_csv("results/theorem1.csv", "beta,gap,bound", &t1).unwrap();
    write_csv("results/theorem3.csv", "delta,samples,mse", &t3).unwrap();
    write_csv("results/theorem4.csv", "iters,gap", &t4).unwrap();
    write_csv("results/theorem5.csv", "iters,mean_sq_grad,bound", &t5).unwrap();
    println!("\nwrote results/theorem{{1,3,4,5}}.csv");
}
