//! Figure 4 — overall performance: five methods × three metrics × three
//! cluster settings (§4.3: five tasks matched to three heterogeneous
//! clusters, three experiment sets A/B/C).
//!
//! Usage: `cargo run -p mfcp-bench --release --bin fig4 [-- --quick]`

use mfcp_bench::{format_table, run_method, write_csv, ExperimentSetup, MethodKind};
use mfcp_platform::metrics::paired_comparison;
use mfcp_platform::settings::Setting;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: Vec<u64> = if quick {
        vec![1, 2]
    } else {
        vec![1, 2, 3, 4, 5, 6, 7, 8]
    };
    let mut csv_lines = Vec::new();
    println!("Figure 4: overall performance (N=5 tasks, M=3 clusters)");
    println!("seeds: {seeds:?}{}", if quick { " [--quick]" } else { "" });

    for setting in Setting::ALL {
        let setup = ExperimentSetup {
            setting,
            eval_rounds: if quick { 10 } else { 30 },
            mfcp_rounds: if quick { 60 } else { 240 },
            ..Default::default()
        };
        let rows: Vec<_> = MethodKind::ALL
            .iter()
            .map(|&kind| run_method(&setup, kind, &seeds))
            .collect();
        print!("{}", format_table(&format!("Setting {setting:?}"), &rows));
        // Paired per-seed comparison vs the TSM baseline (lower = better).
        let tsm = rows.iter().find(|r| r.method == "TSM").unwrap();
        for name in ["MFCP-AD", "MFCP-FG", "UCB"] {
            let row = rows.iter().find(|r| r.method == name).unwrap();
            let cmp = paired_comparison(&row.per_seed_regret, &tsm.per_seed_regret, 1e-6);
            println!("  {name} vs TSM (per-seed regret): {cmp}");
        }
        for r in &rows {
            csv_lines.push(format!(
                "{setting:?},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
                r.method,
                r.regret.mean(),
                r.regret.std(),
                r.reliability.mean(),
                r.reliability.std(),
                r.utilization.mean(),
                r.utilization.std()
            ));
        }
    }
    write_csv(
        "results/fig4.csv",
        "setting,method,regret_mean,regret_std,reliability_mean,reliability_std,utilization_mean,utilization_std",
        &csv_lines,
    )
    .expect("write results/fig4.csv");
    println!("\nwrote results/fig4.csv");
}
