//! Table 2 — parallel task execution (§4.5): the speedup curve ζ decays
//! exponentially from 1 to 0.6, the matching objective becomes
//! non-convex, and MFCP-AD drops out (analytic differentiation assumes
//! convexity); TAM / TSM / UCB / MFCP-FG are compared.
//!
//! Usage: `cargo run -p mfcp-bench --release --bin table2 [-- --quick]`

use mfcp_bench::{format_table, run_method, write_csv, ExperimentSetup, MethodKind};
use mfcp_optim::SpeedupCurve;
use mfcp_platform::settings::Setting;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: Vec<u64> = if quick {
        vec![1, 2]
    } else {
        vec![1, 2, 3, 4, 5]
    };
    let setup = ExperimentSetup {
        setting: Setting::A,
        round_size: 10,
        speedup: Some(SpeedupCurve::paper_parallel()),
        eval_rounds: if quick { 8 } else { 25 },
        mfcp_rounds: if quick { 40 } else { 160 },
        ..Default::default()
    };
    println!("Table 2: parallel task execution (ζ: exp decay 1 → 0.6, N=10)");
    println!("seeds: {seeds:?}{}", if quick { " [--quick]" } else { "" });

    let methods = [
        MethodKind::Tam,
        MethodKind::Tsm,
        MethodKind::Ucb,
        MethodKind::MfcpFg,
    ];
    let rows: Vec<_> = methods
        .iter()
        .map(|&kind| run_method(&setup, kind, &seeds))
        .collect();
    print!("{}", format_table("Table 2 (parallel execution)", &rows));

    // The paper reports MFCP-FG's relative regret reduction vs TSM/UCB.
    let find = |name: &str| rows.iter().find(|r| r.method == name).unwrap();
    let fg = find("MFCP-FG").regret.mean();
    let tsm = find("TSM").regret.mean();
    let ucb = find("UCB").regret.mean();
    if tsm > 0.0 && ucb > 0.0 {
        println!(
            "\nMFCP-FG regret reduction: {:.1}% vs TSM, {:.1}% vs UCB",
            100.0 * (1.0 - fg / tsm),
            100.0 * (1.0 - fg / ucb)
        );
    }

    let csv_lines: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
                r.method,
                r.regret.mean(),
                r.regret.std(),
                r.reliability.mean(),
                r.reliability.std(),
                r.utilization.mean(),
                r.utilization.std()
            )
        })
        .collect();
    write_csv(
        "results/table2.csv",
        "method,regret_mean,regret_std,reliability_mean,reliability_std,utilization_mean,utilization_std",
        &csv_lines,
    )
    .expect("write results/table2.csv");
    println!("\nwrote results/table2.csv");
}
