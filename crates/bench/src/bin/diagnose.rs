//! Developer diagnostic: does the decision-focused phase actually improve
//! on the TSM warm start? Prints per-phase eval scores and the training
//! loss trajectory for one seed.
//!
//! Usage: `cargo run -p mfcp-bench --release --bin diagnose [-- seed]`
//! Env overrides: NOISE, TRIALS, HIDDEN, NTRAIN, DLR, ROUNDS, CLIP, BETA.

use mfcp_bench::ExperimentSetup;
use mfcp_core::eval::evaluate_method;
use mfcp_core::methods::TamPredictor;
use mfcp_core::train::{train_mfcp, train_tsm, train_ucb, GradientMode};
use mfcp_platform::dataset::NoiseConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let mut setup = ExperimentSetup {
        eval_rounds: 25,
        ..Default::default()
    };
    setup.noise = NoiseConfig {
        time_rel_std: env_f64("NOISE", setup.noise.time_rel_std),
        reliability_trials: env_usize("TRIALS", setup.noise.reliability_trials),
    };
    let hidden = env_usize("HIDDEN", setup.supervised.hidden[0]);
    setup.supervised.hidden = if hidden == 0 { vec![] } else { vec![hidden] };
    setup.lossy_embedding = env_usize("LOSSY", 1) != 0;
    setup.n_train = env_usize("NTRAIN", setup.n_train);
    setup.gamma = env_f64("GAMMA", setup.gamma);
    setup.mfcp_rounds = env_usize("ROUNDS", setup.mfcp_rounds);
    setup.relaxation.beta = env_f64("BETA", setup.relaxation.beta);
    let dlr = env_f64("DLR", 1e-3);
    let clip = env_f64("CLIP", 2.0);

    let (train, test) = setup.datasets(seed);
    let opts = setup.eval_options(test.clusters());

    let tam = TamPredictor::fit(&train);
    let s = evaluate_method(&tam, &test, &opts, &mut StdRng::seed_from_u64(42));
    println!(
        "TAM      regret {:>8}  rel {:>8}  util {:>8}",
        s.regret.to_string(),
        s.reliability.to_string(),
        s.utilization.to_string(),
    );
    let ucb = train_ucb(
        &train,
        &setup.supervised,
        setup.kappa,
        seed.wrapping_add(101),
    );
    let s = evaluate_method(&ucb, &test, &opts, &mut StdRng::seed_from_u64(42));
    println!(
        "UCB      regret {:>8}  rel {:>8}  util {:>8}",
        s.regret.to_string(),
        s.reliability.to_string(),
        s.utilization.to_string(),
    );
    let tsm = train_tsm(&train, &setup.supervised, seed.wrapping_add(101));
    let s = evaluate_method(&tsm, &test, &opts, &mut StdRng::seed_from_u64(42));
    println!(
        "TSM      regret {:>8}  rel {:>8}  util {:>8}  (opt makespan {:.3})",
        s.regret.to_string(),
        s.reliability.to_string(),
        s.utilization.to_string(),
        s.optimal_makespan.mean()
    );

    for (label, mode) in [
        ("MFCP-AD", GradientMode::Analytic),
        (
            "MFCP-FG",
            GradientMode::ForwardGradient(setup.zeroth_options()),
        ),
    ] {
        let mut cfg = setup.mfcp_config(train.clusters(), mode);
        cfg.lr = dlr;
        cfg.grad_clip = clip;
        let (pred, report) = train_mfcp(&train, &cfg, seed.wrapping_add(101));
        let s = evaluate_method(&pred, &test, &opts, &mut StdRng::seed_from_u64(42));
        println!(
            "{label}  regret {:>8}  rel {:>8}  util {:>8}",
            s.regret.to_string(),
            s.reliability.to_string(),
            s.utilization.to_string(),
        );
        let h = &report.loss_history;
        let q = (h.len() / 4).max(1);
        let chunk_mean = |c: &[f64]| c.iter().sum::<f64>() / c.len() as f64;
        println!(
            "         loss quartiles: {:.4} {:.4} {:.4} {:.4}   best round {}",
            chunk_mean(&h[..q]),
            chunk_mean(&h[q..2 * q]),
            chunk_mean(&h[2 * q..3 * q]),
            chunk_mean(&h[3 * q..]),
            report.best_round,
        );
        let vs: Vec<String> = report
            .validation_history
            .iter()
            .map(|v| format!("{v:.3}"))
            .collect();
        println!("         val history: {}", vs.join(" "));
    }
}
