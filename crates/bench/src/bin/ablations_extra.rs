//! Extra ablations beyond the paper's Table 1, covering the design
//! decisions DESIGN.md calls out:
//!
//! * projection rule in Algorithm 1 (mirror descent vs the literal
//!   value-space softmax vs Euclidean projection),
//! * alternating vs joint ω/φ updates (§3.3),
//! * the MSE anchor weight of the decision-focused phase.
//!
//! Usage: `cargo run -p mfcp-bench --release --bin ablations_extra [-- --quick]`

use mfcp_bench::{write_csv, ExperimentSetup};
use mfcp_core::eval::evaluate_method;
use mfcp_core::train::{train_mfcp, GradientMode};
use mfcp_optim::solver::ProjectionKind;
use mfcp_platform::metrics::MeanStd;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: Vec<u64> = if quick { vec![1] } else { vec![1, 2, 3] };
    let base = ExperimentSetup {
        eval_rounds: if quick { 8 } else { 25 },
        mfcp_rounds: if quick { 60 } else { 200 },
        ..Default::default()
    };

    struct Variant {
        label: &'static str,
        projection: ProjectionKind,
        alternating: bool,
        mse_anchor: f64,
    }
    let variants = [
        Variant {
            label: "default (mirror, alternating, anchor 0.3)",
            projection: ProjectionKind::MirrorDescent,
            alternating: true,
            mse_anchor: 0.3,
        },
        Variant {
            label: "paper-literal softmax projection",
            projection: ProjectionKind::SoftmaxPaper,
            alternating: true,
            mse_anchor: 0.3,
        },
        Variant {
            label: "euclidean projection",
            projection: ProjectionKind::Euclidean,
            alternating: true,
            mse_anchor: 0.3,
        },
        Variant {
            label: "joint omega/phi updates",
            projection: ProjectionKind::MirrorDescent,
            alternating: false,
            mse_anchor: 0.3,
        },
        Variant {
            label: "no MSE anchor",
            projection: ProjectionKind::MirrorDescent,
            alternating: true,
            mse_anchor: 0.0,
        },
    ];

    println!("Extra ablations of the MFCP training design (MFCP-AD, Setting A)");
    println!("{:<42} {:>16} {:>16}", "variant", "regret", "utilization");
    let mut csv = Vec::new();
    for v in &variants {
        let mut regret = MeanStd::new();
        let mut util = MeanStd::new();
        for &seed in &seeds {
            let (train, test) = base.datasets(seed);
            let mut cfg = base.mfcp_config(train.clusters(), GradientMode::Analytic);
            cfg.solver.projection = v.projection;
            cfg.alternating = v.alternating;
            cfg.mse_anchor = v.mse_anchor;
            let (pred, _) = train_mfcp(&train, &cfg, seed.wrapping_add(101));
            let opts = base.eval_options(test.clusters());
            let scores =
                evaluate_method(&pred, &test, &opts, &mut StdRng::seed_from_u64(seed + 707));
            regret.push(scores.regret.mean());
            util.push(scores.utilization.mean());
        }
        println!(
            "{:<42} {:>16} {:>16}",
            v.label,
            regret.to_string(),
            util.to_string()
        );
        csv.push(format!(
            "{},{:.4},{:.4},{:.4},{:.4}",
            v.label,
            regret.mean(),
            regret.std(),
            util.mean(),
            util.std()
        ));
    }
    write_csv(
        "results/ablations_extra.csv",
        "variant,regret_mean,regret_std,utilization_mean,utilization_std",
        &csv,
    )
    .unwrap();
    println!("\nwrote results/ablations_extra.csv");
}
