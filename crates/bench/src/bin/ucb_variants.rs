//! Extension experiment: the paper's per-cluster-constant UCB vs a deep
//! ensemble UCB with heteroscedastic per-task widths, against the TSM
//! point predictor they both wrap.
//!
//! Motivated by the Figure 4 deviation documented in EXPERIMENTS.md: the
//! constant-width UCB lands between TSM and TAM on our substrate because
//! shifting whole clusters distorts comparisons. Per-task widths only
//! widen where the ensemble disagrees, so they should recover most of the
//! gap.
//!
//! Usage: `cargo run -p mfcp-bench --release --bin ucb_variants [-- --quick]`

use mfcp_bench::{write_csv, ExperimentSetup};
use mfcp_core::eval::evaluate_method;
use mfcp_core::methods::PerformancePredictor;
use mfcp_core::train::{train_ensemble_ucb, train_tsm, train_ucb};
use mfcp_platform::metrics::MeanStd;
use rand::rngs::StdRng;
use rand::SeedableRng;

type TrainerFn = Box<dyn Fn(u64) -> Box<dyn PerformancePredictor>>;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: Vec<u64> = if quick {
        vec![1, 2]
    } else {
        vec![1, 2, 3, 4, 5]
    };
    let setup = ExperimentSetup {
        eval_rounds: if quick { 10 } else { 30 },
        ..Default::default()
    };
    println!("UCB variants (Setting A, N=5): constant widths vs ensemble widths");
    println!("seeds: {seeds:?}{}", if quick { " [--quick]" } else { "" });

    let mut rows: Vec<(String, MeanStd, MeanStd, MeanStd)> = Vec::new();
    let variants: Vec<(&str, TrainerFn)> = vec![
        (
            "TSM",
            Box::new(|seed| {
                let (train, _) = ExperimentSetup::default().datasets(seed);
                Box::new(train_tsm(
                    &train,
                    &ExperimentSetup::default().supervised,
                    seed.wrapping_add(101),
                ))
            }),
        ),
        (
            "UCB (const)",
            Box::new(|seed| {
                let (train, _) = ExperimentSetup::default().datasets(seed);
                Box::new(train_ucb(
                    &train,
                    &ExperimentSetup::default().supervised,
                    1.0,
                    seed.wrapping_add(101),
                ))
            }),
        ),
        (
            "TSM-E (mean)",
            Box::new(|seed| {
                // κ = 0 isolates the ensemble-averaging effect from the
                // pessimism effect.
                let (train, _) = ExperimentSetup::default().datasets(seed);
                Box::new(train_ensemble_ucb(
                    &train,
                    &ExperimentSetup::default().supervised,
                    5,
                    0.0,
                    seed.wrapping_add(101),
                ))
            }),
        ),
        (
            "UCB-E (x5)",
            Box::new(|seed| {
                let (train, _) = ExperimentSetup::default().datasets(seed);
                Box::new(train_ensemble_ucb(
                    &train,
                    &ExperimentSetup::default().supervised,
                    5,
                    1.0,
                    seed.wrapping_add(101),
                ))
            }),
        ),
    ];

    for (label, trainer) in &variants {
        let mut regret = MeanStd::new();
        let mut reliability = MeanStd::new();
        let mut utilization = MeanStd::new();
        for &seed in &seeds {
            let (_, test) = setup.datasets(seed);
            let method = trainer(seed);
            let opts = setup.eval_options(test.clusters());
            let scores = evaluate_method(
                method.as_ref(),
                &test,
                &opts,
                &mut StdRng::seed_from_u64(seed.wrapping_add(707)),
            );
            regret.push(scores.regret.mean());
            reliability.push(scores.reliability.mean());
            utilization.push(scores.utilization.mean());
        }
        println!(
            "{label:<12} regret {:>16}  reliability {:>14}  utilization {:>14}",
            regret.to_string(),
            reliability.to_string(),
            utilization.to_string()
        );
        rows.push((label.to_string(), regret, reliability, utilization));
    }

    let csv: Vec<String> = rows
        .iter()
        .map(|(l, r, a, u)| {
            format!(
                "{l},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
                r.mean(),
                r.std(),
                a.mean(),
                a.std(),
                u.mean(),
                u.std()
            )
        })
        .collect();
    write_csv(
        "results/ucb_variants.csv",
        "variant,regret_mean,regret_std,reliability_mean,reliability_std,utilization_mean,utilization_std",
        &csv,
    )
    .unwrap();
    println!("\nwrote results/ucb_variants.csv");
}
