//! Hyper-parameter sensitivity of the MFCP relaxation: regret and
//! utilization as functions of the smooth-max temperature β, the barrier
//! weight λ, and the entropy weight ρ (the three knobs of Eq. 8–10 plus
//! the DESIGN.md entropy device).
//!
//! Usage: `cargo run -p mfcp-bench --release --bin sweeps [-- --quick]`

use mfcp_bench::{write_csv, ExperimentSetup};
use mfcp_core::eval::evaluate_method;
use mfcp_core::train::{train_mfcp, GradientMode};
use mfcp_platform::metrics::MeanStd;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_point(base: &ExperimentSetup, seeds: &[u64]) -> (MeanStd, MeanStd, MeanStd) {
    let mut regret = MeanStd::new();
    let mut reliability = MeanStd::new();
    let mut utilization = MeanStd::new();
    for &seed in seeds {
        let (train, test) = base.datasets(seed);
        let cfg = base.mfcp_config(train.clusters(), GradientMode::Analytic);
        let (pred, _) = train_mfcp(&train, &cfg, seed.wrapping_add(101));
        let opts = base.eval_options(test.clusters());
        let scores = evaluate_method(
            &pred,
            &test,
            &opts,
            &mut StdRng::seed_from_u64(seed.wrapping_add(707)),
        );
        regret.push(scores.regret.mean());
        reliability.push(scores.reliability.mean());
        utilization.push(scores.utilization.mean());
    }
    (regret, reliability, utilization)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: Vec<u64> = if quick { vec![1] } else { vec![1, 2, 3] };
    let base = ExperimentSetup {
        eval_rounds: if quick { 8 } else { 25 },
        mfcp_rounds: if quick { 40 } else { 120 },
        ..Default::default()
    };
    println!("MFCP-AD hyper-parameter sensitivity (Setting A, seeds {seeds:?})");
    let mut csv = Vec::new();

    println!("\n-- smooth-max temperature β (default 5) --");
    println!(
        "{:>8} {:>16} {:>16} {:>16}",
        "beta", "regret", "reliability", "utilization"
    );
    for beta in [1.0, 2.0, 5.0, 10.0, 20.0] {
        let mut setup = base.clone();
        setup.relaxation.beta = beta;
        let (r, a, u) = run_point(&setup, &seeds);
        println!(
            "{beta:>8.1} {:>16} {:>16} {:>16}",
            r.to_string(),
            a.to_string(),
            u.to_string()
        );
        csv.push(format!(
            "beta,{beta},{:.4},{:.4},{:.4}",
            r.mean(),
            a.mean(),
            u.mean()
        ));
    }

    println!("\n-- barrier weight λ (default 0.05) --");
    println!(
        "{:>8} {:>16} {:>16} {:>16}",
        "lambda", "regret", "reliability", "utilization"
    );
    for lambda in [0.005, 0.02, 0.05, 0.2, 0.8] {
        let mut setup = base.clone();
        setup.relaxation.lambda = lambda;
        let (r, a, u) = run_point(&setup, &seeds);
        println!(
            "{lambda:>8.3} {:>16} {:>16} {:>16}",
            r.to_string(),
            a.to_string(),
            u.to_string()
        );
        csv.push(format!(
            "lambda,{lambda},{:.4},{:.4},{:.4}",
            r.mean(),
            a.mean(),
            u.mean()
        ));
    }

    println!("\n-- entropy weight ρ (default 0.01) --");
    println!(
        "{:>8} {:>16} {:>16} {:>16}",
        "rho", "regret", "reliability", "utilization"
    );
    for rho in [0.001, 0.005, 0.01, 0.05, 0.2] {
        let mut setup = base.clone();
        setup.relaxation.rho = rho;
        let (r, a, u) = run_point(&setup, &seeds);
        println!(
            "{rho:>8.3} {:>16} {:>16} {:>16}",
            r.to_string(),
            a.to_string(),
            u.to_string()
        );
        csv.push(format!(
            "rho,{rho},{:.4},{:.4},{:.4}",
            r.mean(),
            a.mean(),
            u.mean()
        ));
    }

    write_csv(
        "results/sweeps.csv",
        "parameter,value,regret_mean,reliability_mean,utilization_mean",
        &csv,
    )
    .unwrap();
    println!("\nwrote results/sweeps.csv");
}
