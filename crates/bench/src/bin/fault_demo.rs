//! Fault-tolerance demo: the three recovery layers end to end.
//!
//! 1. **Solver fallback ladder** — an instance whose log-barrier is
//!    configured with `eps = 0` drives the plain solver to NaN; the
//!    [`RobustSolver`] walks its ladder and reports the recovery path.
//! 2. **Guarded training** — a dataset with a poisoned (NaN) measurement
//!    trains to completion, with the loss-spike guard rolling the iterate
//!    back whenever a corrupt round is drawn.
//! 3. **Cluster-outage execution** — the same matching replayed with and
//!    without a mid-run outage, showing re-matching keeping the round
//!    alive at a makespan cost.
//!
//! Usage: `cargo run -p mfcp-bench --release --bin fault_demo`

use mfcp_core::train::{train_mfcp, MfcpTrainConfig, TsmTrainConfig};
use mfcp_linalg::Matrix;
use mfcp_optim::rounding::solve_discrete;
use mfcp_optim::solver::{solve_relaxed, SolverOptions};
use mfcp_optim::{BarrierKind, MatchingProblem, RelaxationParams, RobustSolver};
use mfcp_platform::dataset::{NoiseConfig, PlatformDataset};
use mfcp_platform::embedding::FeatureEmbedder;
use mfcp_platform::fault::{simulate_with_faults, ClusterOutage, FaultPlan};
use mfcp_platform::settings::{ClusterPool, Setting};
use mfcp_platform::task::TaskGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn solver_ladder_demo() {
    println!("== 1. Solver fallback ladder ==");
    // Reliability 0.7 everywhere with gamma = 0.95 makes the uniform
    // start infeasible for the reliability constraint; with a raw log
    // barrier (eps = 0) its linear extension divides by zero and the
    // first gradient step is -inf.
    let problem = MatchingProblem::new(Matrix::filled(2, 4, 1.0), Matrix::filled(2, 4, 0.7), 0.95);
    let params = RelaxationParams {
        barrier: BarrierKind::Log { eps: 0.0 },
        ..Default::default()
    };

    let raw = solve_relaxed(&problem, &params, &SolverOptions::default());
    println!(
        "plain solver:  objective {} (finite: {})",
        raw.objective,
        raw.objective.is_finite()
    );

    let solver = RobustSolver::new(params);
    match solver.solve(&problem) {
        Ok(sol) => {
            println!(
                "robust solver: objective {:.6} via {}",
                sol.objective, sol.stage
            );
            println!("recovery path: {}", sol.diagnostics.path());
            for a in &sol.diagnostics.attempts {
                println!(
                    "  {:<16} retry {} iters {:>5} {:>8.3}s  {:?}",
                    a.stage.to_string(),
                    a.retry,
                    a.iterations,
                    a.elapsed_secs,
                    a.outcome
                );
            }
        }
        Err(e) => println!("robust solver failed: {e}"),
    }
    println!();
}

fn guarded_training_demo() {
    println!("== 2. NaN-guarded training with rollback ==");
    let model = ClusterPool::standard().setting(Setting::A);
    let mut rng = StdRng::seed_from_u64(31);
    let mut train = PlatformDataset::generate(
        &model,
        &FeatureEmbedder::default_platform(),
        &TaskGenerator::default(),
        12,
        &NoiseConfig::default(),
        &mut rng,
    );
    // One corrupt measurement: a NaN probe poisons every round that
    // samples task 3.
    train.times[(0, 3)] = f64::NAN;
    let cfg = MfcpTrainConfig {
        warm_start: TsmTrainConfig {
            hidden: vec![24],
            epochs: 120,
            batch_size: 16,
            ..Default::default()
        },
        rounds: 12,
        round_size: 6,
        gamma: 0.8,
        validation_rounds: 0,
        ..Default::default()
    };
    let (pred, report) = train_mfcp(&train, &cfg, 41);
    println!(
        "trained {} rounds, {} rollback(s), {} recovery event(s):",
        report.loss_history.len(),
        report.rollbacks(),
        report.recovery.len()
    );
    for e in &report.recovery {
        println!("  {e}");
    }
    let finite = pred.predictors.iter().all(|p| {
        p.predict_times(&train.features)
            .iter()
            .all(|v| v.is_finite())
            && p.predict_reliability(&train.features)
                .iter()
                .all(|v| v.is_finite())
    });
    println!("final predictors finite: {finite}");
    println!();
}

fn outage_execution_demo() {
    println!("== 3. Cluster outage with failure-aware re-matching ==");
    let t = Matrix::from_rows(&[
        &[1.0, 1.2, 0.8, 1.1, 0.9, 1.3],
        &[1.4, 1.0, 1.2, 0.9, 1.1, 1.0],
    ]);
    let a = Matrix::filled(2, 6, 0.97);
    let problem = MatchingProblem::new(t, a, 0.9);
    let assignment = solve_discrete(
        &problem,
        &RelaxationParams::default(),
        &SolverOptions::default(),
    );
    println!("planned assignment: {:?}", assignment.cluster_of);

    let healthy = simulate_with_faults(
        &problem,
        &assignment,
        &FaultPlan::none(),
        3,
        &mut StdRng::seed_from_u64(7),
    );
    // Cluster 0 goes down early and stays down for most of the round.
    let plan = FaultPlan::none()
        .with_outage(ClusterOutage::new(0, 0.5, 50.0))
        .with_stragglers(0.1, 3.0);
    let faulty = simulate_with_faults(
        &problem,
        &assignment,
        &plan,
        3,
        &mut StdRng::seed_from_u64(7),
    );

    println!(
        "healthy: makespan {:.2}  success rate {:.2}  remapped {:?}",
        healthy.makespan, healthy.success_rate, healthy.remapped
    );
    println!(
        "faulty:  makespan {:.2}  success rate {:.2}  remapped {:?}  outage kills {}  stragglers {}",
        faulty.makespan,
        faulty.success_rate,
        faulty.remapped,
        faulty.outage_kills,
        faulty.stragglers
    );
    println!("final clusters under faults: {:?}", faulty.final_cluster);
}

fn main() {
    solver_ladder_demo();
    guarded_training_demo();
    outage_execution_demo();
}
