//! Figure 5 — scalability: regret and cluster utilization vs the number
//! of tasks per round (§4.4: Setting A, varying the number of tasks in a
//! single round).
//!
//! Usage: `cargo run -p mfcp-bench --release --bin fig5 [-- --quick]`

use mfcp_bench::{run_method, write_csv, ExperimentSetup, MethodKind};
use mfcp_platform::settings::Setting;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: Vec<u64> = if quick { vec![1, 2] } else { vec![1, 2, 3] };
    let task_counts: &[usize] = if quick {
        &[5, 15]
    } else {
        &[5, 10, 15, 20, 25]
    };
    println!("Figure 5: scaling with the number of tasks (Setting A)");
    println!("seeds: {seeds:?}{}", if quick { " [--quick]" } else { "" });

    let mut csv_lines = Vec::new();
    println!(
        "\n{:<6} {:<10} {:>14} {:>14}",
        "N", "Method", "Regret", "Utilization"
    );
    for &n in task_counts {
        let setup = ExperimentSetup {
            setting: Setting::A,
            round_size: n,
            // Keep the train/test pools comfortably larger than a round.
            n_train: 110.max(4 * n),
            n_test: 60.max(3 * n),
            eval_rounds: if quick { 8 } else { 20 },
            mfcp_rounds: if quick { 50 } else { 160 },
            ..Default::default()
        };
        for kind in MethodKind::ALL {
            let agg = run_method(&setup, kind, &seeds);
            println!(
                "{:<6} {:<10} {:>14} {:>14}",
                n,
                agg.method,
                agg.regret.to_string(),
                agg.utilization.to_string()
            );
            csv_lines.push(format!(
                "{n},{},{:.4},{:.4},{:.4},{:.4}",
                agg.method,
                agg.regret.mean(),
                agg.regret.std(),
                agg.utilization.mean(),
                agg.utilization.std()
            ));
        }
    }
    write_csv(
        "results/fig5.csv",
        "n_tasks,method,regret_mean,regret_std,utilization_mean,utilization_std",
        &csv_lines,
    )
    .expect("write results/fig5.csv");
    println!("\nwrote results/fig5.csv");
}
