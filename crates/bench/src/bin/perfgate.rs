//! Continuous benchmark gate for the solve-and-train pipeline.
//!
//! Runs the fixed perfgate suite (MFCP-AD solve, MFCP-FG solve, one
//! training round, pool throughput, fault replay — see
//! `mfcp_bench::perfgate`), writes the schema-stable JSON report, and in
//! `--check` mode compares it against the checked-in baseline, exiting
//! nonzero on regression.
//!
//! Usage:
//!   cargo run --release -p mfcp-bench --bin perfgate -- \
//!     [--runs N] [--tasks N] [--rounds N] [--seed N] \
//!     [--out PATH] [--baseline PATH] [--check] [--tolerance F] \
//!     [--trace PATH]
//!
//! `--trace PATH` additionally exports the flight-recorder contents of
//! the final training-round run as Chrome trace-event JSON (loadable in
//! chrome://tracing or Perfetto).

use mfcp_bench::perfgate::{run_perfgate, PerfgateConfig, PerfgateReport, DEFAULT_TOLERANCE};
use std::path::{Path, PathBuf};

struct Args {
    cfg: PerfgateConfig,
    out: PathBuf,
    baseline: PathBuf,
    check: bool,
    tolerance: f64,
    trace: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cfg: PerfgateConfig::default(),
        out: PathBuf::from("BENCH_perfgate.json"),
        baseline: PathBuf::from("bench/baseline.json"),
        check: false,
        tolerance: DEFAULT_TOLERANCE,
        trace: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take_value = |i: usize| -> Result<&str, String> {
            argv.get(i + 1)
                .map(String::as_str)
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--runs" => {
                args.cfg.runs = take_value(i)?.parse().map_err(|e| format!("--runs: {e}"))?;
                i += 2;
            }
            "--tasks" => {
                args.cfg.tasks = take_value(i)?
                    .parse()
                    .map_err(|e| format!("--tasks: {e}"))?;
                i += 2;
            }
            "--rounds" => {
                args.cfg.rounds = take_value(i)?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?;
                i += 2;
            }
            "--seed" => {
                args.cfg.seed = take_value(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--out" => {
                args.out = PathBuf::from(take_value(i)?);
                i += 2;
            }
            "--baseline" => {
                args.baseline = PathBuf::from(take_value(i)?);
                i += 2;
            }
            "--check" => {
                args.check = true;
                i += 1;
            }
            "--tolerance" => {
                args.tolerance = take_value(i)?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?;
                if !(args.tolerance >= 0.0 && args.tolerance.is_finite()) {
                    return Err("--tolerance must be a finite non-negative number".into());
                }
                i += 2;
            }
            "--trace" => {
                args.trace = Some(PathBuf::from(take_value(i)?));
                i += 2;
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn write_creating_dir(path: &Path, content: &str) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, content).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("perfgate: {msg}");
            eprintln!(
                "usage: perfgate [--runs N] [--tasks N] [--rounds N] [--seed N] [--out PATH] \
                 [--baseline PATH] [--check] [--tolerance F] [--trace PATH]"
            );
            std::process::exit(2);
        }
    };

    println!(
        "perfgate: runs {} tasks {} rounds {} seed {}",
        args.cfg.runs, args.cfg.tasks, args.cfg.rounds, args.cfg.seed
    );
    let mut trace_json = String::new();
    let report = run_perfgate(&args.cfg, args.trace.is_some().then_some(&mut trace_json));
    for s in &report.suites {
        println!(
            "  {:<16} median {:>9.4}s  p95 {:>9.4}s  over {} runs",
            s.name,
            s.median_wall_secs,
            s.p95_wall_secs,
            s.wall_secs.len()
        );
    }

    if let Err(msg) = write_creating_dir(&args.out, &report.to_json()) {
        eprintln!("perfgate: {msg}");
        std::process::exit(1);
    }
    println!("wrote {}", args.out.display());

    if let Some(trace_path) = &args.trace {
        if let Err(msg) = write_creating_dir(trace_path, &trace_json) {
            eprintln!("perfgate: {msg}");
            std::process::exit(1);
        }
        println!("wrote {}", trace_path.display());
    }

    if args.check {
        let baseline_text = match std::fs::read_to_string(&args.baseline) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "perfgate: cannot read baseline {}: {e}",
                    args.baseline.display()
                );
                std::process::exit(1);
            }
        };
        let baseline = mfcp_obs::json::parse(&baseline_text)
            .map_err(|e| e.to_string())
            .and_then(|doc| PerfgateReport::from_json(&doc));
        let baseline = match baseline {
            Ok(b) => b,
            Err(msg) => {
                eprintln!(
                    "perfgate: invalid baseline {}: {msg}",
                    args.baseline.display()
                );
                std::process::exit(1);
            }
        };
        let violations = report.compare(&baseline, args.tolerance);
        if violations.is_empty() {
            println!(
                "check PASSED against {} (tolerance {:.0}%)",
                args.baseline.display(),
                args.tolerance * 100.0
            );
        } else {
            eprintln!(
                "check FAILED against {} (tolerance {:.0}%):",
                args.baseline.display(),
                args.tolerance * 100.0
            );
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}
