//! Figure 2 — the paper's motivating example, reproduced quantitatively:
//! two clusters with different response curves (A linear in the task
//! feature, B exponential), three tasks, and *linear-regression*
//! predictors. Plain MSE fitting mis-ranks the clusters for the middle
//! task; re-weighting the fit toward decision-relevant tasks (the
//! matching-focused idea) fixes the allocation without fixing the
//! prediction error.
//!
//! Usage: `cargo run -p mfcp-bench --release --bin fig2`

use mfcp_linalg::{qr, Matrix};

/// Ground-truth response curves from the paper's illustration.
fn time_a(z: f64) -> f64 {
    1.0 + 2.0 * z // Cluster A: linear growth
}

fn time_b(z: f64) -> f64 {
    0.4 * (1.8 * z).exp() + 0.4 // Cluster B: slow start, explosive tail
}

/// Weighted 1-D linear least squares: minimizes Σ w_i (a + b z_i − t_i)².
fn weighted_linear_fit(zs: &[f64], ts: &[f64], ws: &[f64]) -> (f64, f64) {
    let n = zs.len();
    let design = Matrix::from_fn(n, 2, |r, c| {
        let w = ws[r].sqrt();
        if c == 0 {
            w
        } else {
            w * zs[r]
        }
    });
    let rhs: Vec<f64> = (0..n).map(|r| ws[r].sqrt() * ts[r]).collect();
    let coef = qr::lstsq(&design, &rhs).expect("well-posed fit");
    (coef[0], coef[1])
}

fn main() {
    // Training features densely cover [0, 2]; the three illustration
    // tasks sit at the paper's qualitative positions.
    let train_z: Vec<f64> = (0..21).map(|i| i as f64 * 0.1).collect();
    let tasks = [0.4f64, 1.0, 1.8];

    let ta: Vec<f64> = train_z.iter().map(|&z| time_a(z)).collect();
    let tb: Vec<f64> = train_z.iter().map(|&z| time_b(z)).collect();
    let uniform = vec![1.0; train_z.len()];

    // --- upper panel: independent MSE fits ------------------------------
    let (a0, a1) = weighted_linear_fit(&train_z, &ta, &uniform);
    let (b0, b1) = weighted_linear_fit(&train_z, &tb, &uniform);
    println!(
        "MSE-fit predictors:     t̂_A(z) = {a0:.2} + {a1:.2} z    t̂_B(z) = {b0:.2} + {b1:.2} z"
    );

    // --- lower panel: matching-focused weights --------------------------
    // Weight each training point by its decision relevance: points where
    // the two clusters' true times are close decide allocations, points
    // deep inside one cluster's win region do not.
    let weights: Vec<f64> = train_z
        .iter()
        .map(|&z| {
            let gap = (time_a(z) - time_b(z)).abs();
            1.0 / (0.05 + gap * gap)
        })
        .collect();
    let (a0m, a1m) = weighted_linear_fit(&train_z, &ta, &weights);
    let (b0m, b1m) = weighted_linear_fit(&train_z, &tb, &weights);
    println!(
        "matching-focused fits:  t̂_A(z) = {a0m:.2} + {a1m:.2} z    t̂_B(z) = {b0m:.2} + {b1m:.2} z"
    );

    println!(
        "\n{:>6} {:>9} {:>9} {:>7} | {:>9} {:>9} {:>7} | {:>9} {:>9} {:>7}",
        "task", "true A", "true B", "best", "MSE Â", "MSE B̂", "pick", "MF Â", "MF B̂", "pick"
    );
    let mut mse_correct = 0;
    let mut mf_correct = 0;
    for (k, &z) in tasks.iter().enumerate() {
        let (true_a, true_b) = (time_a(z), time_b(z));
        let best = if true_a <= true_b { "A" } else { "B" };
        let (pa, pb) = (a0 + a1 * z, b0 + b1 * z);
        let mse_pick = if pa <= pb { "A" } else { "B" };
        let (qa, qb) = (a0m + a1m * z, b0m + b1m * z);
        let mf_pick = if qa <= qb { "A" } else { "B" };
        mse_correct += (mse_pick == best) as usize;
        mf_correct += (mf_pick == best) as usize;
        println!(
            "{:>6} {:>9.2} {:>9.2} {:>7} | {:>9.2} {:>9.2} {:>7} | {:>9.2} {:>9.2} {:>7}",
            k + 1,
            true_a,
            true_b,
            best,
            pa,
            pb,
            mse_pick,
            qa,
            qb,
            mf_pick
        );
    }
    println!("\ncorrect allocations: MSE fit {mse_correct}/3, matching-focused fit {mf_correct}/3");
    assert!(
        mf_correct >= mse_correct,
        "the motivating example should favour the matching-focused fit"
    );
    println!(
        "(the matching-focused fit still mispredicts absolute times — it spends\n\
         its limited linear capacity where decisions are made, exactly Fig. 2's point)"
    );
}
