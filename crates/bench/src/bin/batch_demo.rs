//! Demonstrates batched parallel solving (`mfcp_parallel::solve_batch`)
//! on the shared `batch_solve` workload: solves the same set of sampled
//! matching rounds sequentially and batched, verifies the objectives are
//! bit-for-bit identical, and reports the wall-clock ratio.
//!
//! Usage:
//!   cargo run --release -p mfcp-bench --bin batch_demo -- \
//!     [--problems N] [--tasks N] [--round-size N] [--seed N] [--threads N]

use mfcp_bench::batch::{build_round_problems, solve_rounds, BatchWorkloadConfig};
use mfcp_parallel::ParallelConfig;
use std::time::Instant;

struct Args {
    cfg: BatchWorkloadConfig,
    threads: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cfg: BatchWorkloadConfig::default(),
        threads: mfcp_parallel::default_threads(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take_value = |i: usize| -> Result<&str, String> {
            argv.get(i + 1)
                .map(String::as_str)
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        let parse = |v: &str, what: &str| -> Result<usize, String> {
            v.parse().map_err(|e| format!("{what}: {e}"))
        };
        match argv[i].as_str() {
            "--problems" => args.cfg.problems = parse(take_value(i)?, "--problems")?,
            "--tasks" => args.cfg.tasks = parse(take_value(i)?, "--tasks")?,
            "--round-size" => args.cfg.round_size = parse(take_value(i)?, "--round-size")?,
            "--seed" => args.cfg.seed = parse(take_value(i)?, "--seed")? as u64,
            "--threads" => args.threads = parse(take_value(i)?, "--threads")?.max(1),
            other => return Err(format!("unknown argument {other}")),
        }
        i += 2;
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("batch_demo: {msg}");
            eprintln!(
                "usage: batch_demo [--problems N] [--tasks N] [--round-size N] [--seed N] \
                 [--threads N]"
            );
            std::process::exit(2);
        }
    };

    println!(
        "batch_demo: {} problems ({} tasks, rounds of {}, seed {}), {} threads",
        args.cfg.problems, args.cfg.tasks, args.cfg.round_size, args.cfg.seed, args.threads
    );
    let problems = build_round_problems(&args.cfg);

    let t0 = Instant::now();
    let seq = solve_rounds(&problems, &ParallelConfig::sequential());
    let seq_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let par = solve_rounds(&problems, &ParallelConfig::with_threads(args.threads));
    let par_secs = t0.elapsed().as_secs_f64();

    let identical = seq
        .iter()
        .zip(&par)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
        println!("  round {i:>3}: sequential {s:.12}  batched {p:.12}");
    }
    println!(
        "sequential: {seq_secs:.4}s  batched: {par_secs:.4}s  speedup: {:.2}x",
        seq_secs / par_secs.max(1e-12)
    );
    if identical {
        println!("objectives bit-for-bit identical across both paths");
    } else {
        eprintln!("batch_demo: batched objectives diverge from sequential — determinism bug");
        std::process::exit(1);
    }
}
