//! Table 1 — ablation study of MFCP's gradient-computation design:
//! (1) linear cost instead of the smoothed max, (2) hard hinge penalty
//! instead of the log barrier, (3) zeroth-order gradients instead of
//! analytic differentiation, vs the full MFCP.
//!
//! Usage: `cargo run -p mfcp-bench --release --bin table1 [-- --quick]`

use mfcp_bench::{format_table, run_ablation, write_csv, AblationVariant, ExperimentSetup};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: Vec<u64> = if quick {
        vec![1, 2]
    } else {
        vec![1, 2, 3, 4, 5]
    };
    let setup = ExperimentSetup {
        eval_rounds: if quick { 10 } else { 30 },
        mfcp_rounds: if quick { 60 } else { 240 },
        ..Default::default()
    };
    println!("Table 1: ablation study of MFCP (Setting A, N=5, M=3)");
    println!("seeds: {seeds:?}{}", if quick { " [--quick]" } else { "" });

    let rows: Vec<_> = AblationVariant::ALL
        .iter()
        .map(|&v| run_ablation(&setup, v, &seeds))
        .collect();
    print!("{}", format_table("Table 1 (ablation)", &rows));

    let csv_lines: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
                r.method,
                r.regret.mean(),
                r.regret.std(),
                r.reliability.mean(),
                r.reliability.std(),
                r.utilization.mean(),
                r.utilization.std()
            )
        })
        .collect();
    write_csv(
        "results/table1.csv",
        "variant,regret_mean,regret_std,reliability_mean,reliability_std,utilization_mean,utilization_std",
        &csv_lines,
    )
    .expect("write results/table1.csv");
    println!("\nwrote results/table1.csv");
}
