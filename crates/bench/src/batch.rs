//! Shared batched-solving workload: the `batch_solve` perfgate suite and
//! the `batch_demo` binary both run this, so the gated number and the
//! human-inspectable demo measure the same thing.
//!
//! The workload mirrors a platform tick: `problems` matching rounds are
//! sampled from one generated dataset (structurally identical problems —
//! same clusters, same `N`, same constraint parameters — with different
//! measured data), then every round is solved through
//! [`mfcp_parallel::solve_batch`]. Results come back in input order
//! regardless of thread count, which is what makes the sequential and
//! batched paths comparable bit for bit.

use mfcp_linalg::Matrix;
use mfcp_optim::solver::{solve_relaxed, SolverOptions};
use mfcp_optim::{MatchingProblem, RelaxationParams};
use mfcp_parallel::{solve_batch, ParallelConfig};
use mfcp_platform::dataset::{NoiseConfig, PlatformDataset};
use mfcp_platform::embedding::FeatureEmbedder;
use mfcp_platform::settings::{ClusterPool, Setting};
use mfcp_platform::task::TaskGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Size knobs for the batched-solving workload.
#[derive(Debug, Clone, Copy)]
pub struct BatchWorkloadConfig {
    /// Number of matching rounds (= batch slots) to solve.
    pub problems: usize,
    /// Tasks in the generated dataset the rounds are sampled from.
    pub tasks: usize,
    /// Tasks per round (`N`).
    pub round_size: usize,
    /// Reliability threshold `γ`.
    pub gamma: f64,
    /// Dataset / round-sampling seed.
    pub seed: u64,
}

impl Default for BatchWorkloadConfig {
    fn default() -> Self {
        BatchWorkloadConfig {
            problems: 16,
            tasks: 24,
            round_size: 5,
            gamma: 0.8,
            seed: 7,
        }
    }
}

/// Samples `cfg.problems` matching rounds from one generated dataset.
///
/// All returned problems share one structure (cluster set, `N`, γ); only
/// the measured time/reliability data differs round to round.
pub fn build_round_problems(cfg: &BatchWorkloadConfig) -> Vec<MatchingProblem> {
    let model = ClusterPool::standard().setting(Setting::A);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let data = PlatformDataset::generate(
        &model,
        &FeatureEmbedder::bottlenecked_platform(),
        &TaskGenerator::default(),
        cfg.tasks.max(cfg.round_size),
        &NoiseConfig::default(),
        &mut rng,
    );
    let m = data.clusters();
    let scale = data.times.mean().max(1e-9);
    (0..cfg.problems)
        .map(|_| {
            let idx = mfcp_core::train::sample_round_indices(data.len(), cfg.round_size, &mut rng);
            let n = idx.len();
            let t = Matrix::from_fn(m, n, |i, j| data.times[(i, idx[j])] / scale);
            let a = Matrix::from_fn(m, n, |i, j| data.reliability[(i, idx[j])]);
            MatchingProblem::new(t, a, cfg.gamma)
        })
        .collect()
}

/// Solves every round through [`solve_batch`] and returns the relaxed
/// objectives in input order. Panics if any slot panicked — the bench
/// workload contains no fault injection, so a slot panic is a real bug.
pub fn solve_rounds(problems: &[MatchingProblem], parallel: &ParallelConfig) -> Vec<f64> {
    let params = RelaxationParams::default();
    let opts = SolverOptions::default();
    solve_batch(parallel, problems, |_, p| {
        solve_relaxed(p, &params, &opts).objective
    })
    .into_iter()
    .map(|slot| slot.expect("bench workload slots do not panic"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_objectives_match_sequential_bitwise() {
        let cfg = BatchWorkloadConfig {
            problems: 6,
            tasks: 12,
            ..Default::default()
        };
        let problems = build_round_problems(&cfg);
        assert_eq!(problems.len(), 6);
        let seq = solve_rounds(&problems, &ParallelConfig::sequential());
        let par = solve_rounds(&problems, &ParallelConfig::with_threads(4));
        let seq_bits: Vec<u64> = seq.iter().map(|v| v.to_bits()).collect();
        let par_bits: Vec<u64> = par.iter().map(|v| v.to_bits()).collect();
        assert_eq!(seq_bits, par_bits);
        assert!(seq.iter().all(|v| v.is_finite()));
    }
}
