//! Continuous benchmark gate behind the `perfgate` binary.
//!
//! Runs a fixed suite of tier-1 workloads — an MFCP-AD solve, an MFCP-FG
//! solve, one guarded training round, a thread-pool throughput burst, a
//! fault-injected replay, the warm-started MFCP-AD solve (`solve_warm`),
//! a batched relaxed-solve fan-out (`batch_solve`), a head-to-head
//! of the structured vs dense implicit-gradient paths (`kkt_grad`),
//! an online-serving trace replay with one kill/restore cycle
//! (`serve_replay`), the blocked-vs-scalar Cholesky kernel comparison
//! (`chol_blocked`), the sharded-vs-monolithic relaxed solve at
//! platform scale (`shard_solve`), the live ops surface — endpoint
//! latency over every `mfcp_obs::http` route plus a serve-replay
//! overhead A/B with the ops server on vs off (`obs_http`) — and the
//! learned-duals head-to-head on unseen instances: predict-seeded vs
//! cold vs cache-warm solves with a not-worse-than-cold tripwire
//! (`learned_duals`) — each repeated `runs` times, and emits a
//! schema-stable JSON report (`BENCH_perfgate.json` at the repo root):
//! median/p95 wall time per suite, the deterministic observability
//! counters and histogram quantiles from the final run, and enough
//! environment metadata to interpret a number before comparing it.
//!
//! Sub-millisecond suites are timed with batched repetition: each run
//! executes the workload `inner_reps` times (see the `SUITES` table) and
//! reports elapsed-over-reps, so the gate measures a multi-millisecond
//! window instead of scheduler noise.
//!
//! `--check` mode reads a checked-in baseline (`bench/baseline.json`),
//! compares suite-by-suite, and exits nonzero on regression:
//!
//! * `median_wall_secs` gates with a noise-tolerant relative threshold
//!   (default 25%, `--tolerance` overrides, and a baseline may pin a
//!   per-metric threshold in its `"thresholds"` map);
//! * counter metrics gate on *increases* only (more solver attempts,
//!   more rollbacks, more re-matches than the baseline is a regression;
//!   fewer is an improvement);
//! * `hist.*` quantile metrics are informational — bucket resolution and
//!   scheduling noise make them poor gates.
//!
//! Everything is hand-rolled JSON validated by [`mfcp_obs::json`]; there
//! is no serde in this workspace.

use crate::batch::{build_round_problems, solve_rounds, BatchWorkloadConfig};
use crate::report::{fault_stage, training_stage, ReportConfig};
use mfcp_core::train::{train_mfcp, GradientMode, MfcpTrainConfig, TsmTrainConfig};
use mfcp_linalg::lu::Lu;
use mfcp_linalg::qr::Qr;
use mfcp_linalg::{Cholesky, CholeskyBatch, Matrix};
use mfcp_obs::json::{self, Json};
use mfcp_optim::kkt::{self, KktWorkspace};
use mfcp_optim::solver::solve_relaxed;
use mfcp_optim::zeroth::ZerothOrderOptions;
use mfcp_optim::{
    CacheOutcome, LearnedDualHead, MatchingProblem, RelaxationParams, RobustSolver, ShardedOptions,
    ShardedSolver, SolverOptions, WarmStartCache,
};
use mfcp_parallel::{ParallelConfig, ThreadPool};
use mfcp_platform::dataset::{NoiseConfig, PlatformDataset};
use mfcp_platform::embedding::FeatureEmbedder;
use mfcp_platform::settings::{ClusterPool, Setting};
use mfcp_platform::stream::{generate_trace, TraceConfig};
use mfcp_platform::task::TaskGenerator;
use mfcp_serve::{replay_with_kills, DaemonConfig, MatrixSource};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Report schema version; bump on any field rename or semantic change.
pub const SCHEMA_VERSION: u64 = 1;

/// Default relative regression threshold (25%).
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Size knobs for one perfgate pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfgateConfig {
    /// Timed repetitions per suite (median over these).
    pub runs: usize,
    /// Tasks per generated dataset / fault round.
    pub tasks: usize,
    /// Decision-focused training rounds in the solve suites.
    pub rounds: usize,
    /// Base RNG seed (suites derive their own sub-seeds).
    pub seed: u64,
}

impl Default for PerfgateConfig {
    fn default() -> Self {
        PerfgateConfig {
            runs: 3,
            tasks: 12,
            rounds: 3,
            seed: 7,
        }
    }
}

impl PerfgateConfig {
    fn report_cfg(&self) -> ReportConfig {
        ReportConfig {
            tasks: self.tasks,
            rounds: self.rounds,
            seed: self.seed,
        }
    }
}

/// One suite's aggregated timings plus the final run's metric snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteResult {
    /// Suite name (stable across versions; baseline keys match on it).
    pub name: String,
    /// Per-run wall times, in run order.
    pub wall_secs: Vec<f64>,
    /// Median of `wall_secs`.
    pub median_wall_secs: f64,
    /// 95th percentile of `wall_secs` (max for small run counts).
    pub p95_wall_secs: f64,
    /// Observability counters (`name -> value`) and histogram quantiles
    /// (`hist.<name>.p50` / `.p95`) from the final run.
    pub metrics: BTreeMap<String, f64>,
}

/// A full perfgate pass: config echo, environment, and per-suite results.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfgateReport {
    /// Schema version of the serialized form.
    pub schema_version: u64,
    /// Seconds since the Unix epoch when the report was produced.
    pub created_unix: u64,
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Available parallelism on the producing machine.
    pub threads: u64,
    /// The config the pass ran with.
    pub config: PerfgateConfig,
    /// Suite results in fixed suite order.
    pub suites: Vec<SuiteResult>,
    /// Optional per-metric tolerance overrides, keyed
    /// `"<suite>.<metric>"`. Only meaningful on a baseline.
    pub thresholds: BTreeMap<String, f64>,
}

/// One gate failure found by [`PerfgateReport::compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Suite the metric belongs to.
    pub suite: String,
    /// Metric name (`median_wall_secs` or a counter name).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Relative change `(current - baseline) / baseline`.
    pub rel_change: f64,
    /// Tolerance the change was gated against.
    pub tolerance: f64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}.{}: {:.6} -> {:.6} (+{:.1}%, tolerance {:.0}%)",
            self.suite,
            self.metric,
            self.baseline,
            self.current,
            self.rel_change * 100.0,
            self.tolerance * 100.0
        )
    }
}

// ---------------------------------------------------------------------
// Suites
// ---------------------------------------------------------------------

fn tiny_dataset(cfg: &PerfgateConfig, salt: u64) -> PlatformDataset {
    let model = ClusterPool::standard().setting(Setting::A);
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(salt));
    PlatformDataset::generate(
        &model,
        &FeatureEmbedder::bottlenecked_platform(),
        &TaskGenerator::default(),
        cfg.tasks.max(8),
        &NoiseConfig::default(),
        &mut rng,
    )
}

fn solve_train_cfg(cfg: &PerfgateConfig, mode: GradientMode) -> MfcpTrainConfig {
    MfcpTrainConfig {
        warm_start: TsmTrainConfig {
            hidden: vec![8],
            epochs: 20,
            ..Default::default()
        },
        // Full-population rounds over enough of them for the predictors to
        // settle: every round re-solves the same task set (shuffled), which
        // is the slowly-drifting re-solve regime the warm-start cache is
        // built for — and the regime where `solve_warm` vs `solve_ad` is a
        // pure measurement of the cache, not of round-composition churn.
        rounds: cfg.rounds.max(6),
        round_size: cfg.tasks.max(8),
        gamma: 0.8,
        validation_rounds: 0,
        mode,
        // Run-to-convergence solver (the deployed `ExperimentSetup` regime)
        // rather than the 400-iteration default cap: iteration counts must
        // respond to solve difficulty for the warm-start suite to measure
        // anything — a capped solver burns the same budget cold or warm.
        // lr 0.2 keeps mirror descent monotone on these instances; at the
        // default 0.8 several solves limit-cycle above the tolerance and
        // burn `max_iters` no matter where they start.
        solver: SolverOptions {
            max_iters: 20_000,
            tol: 1e-8,
            lr: 0.2,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// MFCP-AD: decision-focused rounds with analytic KKT gradients. This is
/// the tier-1 hot path — PGD solves plus implicit differentiation.
fn suite_solve_ad(cfg: &PerfgateConfig) {
    let data = tiny_dataset(cfg, 11);
    let train_cfg = solve_train_cfg(cfg, GradientMode::Analytic);
    let _ = train_mfcp(&data, &train_cfg, cfg.seed.wrapping_add(1));
}

/// MFCP-FG: the same rounds with zeroth-order forward gradients, which
/// multiplies the solve count by the perturbation sample count.
fn suite_solve_fg(cfg: &PerfgateConfig) {
    let data = tiny_dataset(cfg, 13);
    let zeroth = ZerothOrderOptions {
        delta: 0.05,
        samples: 4,
        parallel: ParallelConfig::default(),
    };
    let mut train_cfg = solve_train_cfg(cfg, GradientMode::ForwardGradient(zeroth));
    // FG multiplies the solve count by ~2·samples per cluster; keep this
    // suite at the smaller round shape so it tracks the FG machinery's
    // cost without dominating the gate's wall time.
    train_cfg.rounds = cfg.rounds.max(1);
    train_cfg.round_size = 4;
    let _ = train_mfcp(&data, &train_cfg, cfg.seed.wrapping_add(2));
}

/// One guarded training round with a poisoned sample and a checkpoint —
/// the rollback/checkpoint machinery, not just the solver.
fn suite_train_round(cfg: &PerfgateConfig) {
    training_stage(&cfg.report_cfg());
}

/// Thread-pool throughput: a burst of ~200 trivial jobs through a
/// 2-worker pool, dominated by enqueue/dispatch cost.
fn suite_pool_throughput(_cfg: &PerfgateConfig) {
    let pool = ThreadPool::new(2);
    let hits = Arc::new(AtomicUsize::new(0));
    for _ in 0..200 {
        let hits = Arc::clone(&hits);
        pool.execute(move || {
            hits.fetch_add(1, Ordering::Relaxed);
        });
    }
    let _ = pool.join();
}

/// Fault-injected replay: outage + stragglers over a discrete matching.
fn suite_fault_replay(cfg: &PerfgateConfig) {
    fault_stage(&cfg.report_cfg());
}

/// Warm-started MFCP-AD: byte-identical workload to `solve_ad` except the
/// round solves seed from a [`mfcp_core::train::SolveCache`]. The gap
/// between this suite's median and `solve_ad`'s is the warm-start payoff.
fn suite_solve_warm(cfg: &PerfgateConfig) {
    let data = tiny_dataset(cfg, 11);
    let mut train_cfg = solve_train_cfg(cfg, GradientMode::Analytic);
    train_cfg.solve_cache = true;
    let _ = train_mfcp(&data, &train_cfg, cfg.seed.wrapping_add(1));
}

/// Batched relaxed solves over structurally identical round problems
/// through `solve_batch` (deterministic ordering, per-slot isolation).
fn suite_batch_solve(cfg: &PerfgateConfig) {
    let bcfg = BatchWorkloadConfig {
        tasks: cfg.tasks.max(8) * 2,
        seed: cfg.seed.wrapping_add(17),
        ..Default::default()
    };
    let problems = build_round_problems(&bcfg);
    let _ = solve_rounds(&problems, &ParallelConfig::default());
}

/// Implicit KKT gradients head-to-head: the structured Woodbury/Schur
/// elimination against the dense saddle-LU oracle on one deterministic
/// interior instance. Per-call wall times land in the
/// `kkt.grad.structured_secs` / `kkt.grad.dense_secs` histograms; the
/// ratio of their medians is the structured-elimination speedup.
fn suite_kkt_grad(cfg: &PerfgateConfig) {
    const M: usize = 10;
    const STRUCTURED_REPS: usize = 8;
    const DENSE_REPS: usize = 2;
    // N scales with the task knob so tiny smoke configs stay cheap in
    // debug builds; the default config (tasks = 12) lands exactly on the
    // Table-1 scale M = 10, N = 100 where the dense saddle system is
    // (MN + N) x (MN + N) = 1100 x 1100.
    let n = (cfg.tasks * 100).div_ceil(12).min(100);
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(23));
    let times = Matrix::from_fn(M, n, |_, _| rng.gen_range(0.5..3.0));
    let rel = Matrix::from_fn(M, n, |_, _| rng.gen_range(0.8..0.999));
    let problem = MatchingProblem::new(times, rel, 0.5);
    let mut x = Matrix::from_fn(M, n, |_, _| rng.gen_range(0.1..1.0));
    for j in 0..n {
        let col: f64 = (0..M).map(|i| x[(i, j)]).sum();
        for i in 0..M {
            x[(i, j)] /= col;
        }
    }
    let dl_dx = Matrix::from_fn(M, n, |_, _| rng.gen_range(-1.0..1.0));
    let params = RelaxationParams::default();
    let structured_h = mfcp_obs::histogram("kkt.grad.structured_secs");
    let dense_h = mfcp_obs::histogram("kkt.grad.dense_secs");
    let mut ws = KktWorkspace::new();
    // Size the workspace outside the timed reps so they measure the
    // steady-state reuse regime training rounds run in.
    kkt::implicit_gradients_with(&problem, &params, &x, &dl_dx, &mut ws)
        .expect("interior instance must factor");
    for _ in 0..STRUCTURED_REPS {
        let t0 = Instant::now();
        let grads = kkt::implicit_gradients_with(&problem, &params, &x, &dl_dx, &mut ws)
            .expect("interior instance must factor");
        structured_h.record_duration(t0.elapsed());
        assert!(grads.dl_dt[(0, 0)].is_finite());
    }
    assert_eq!(
        ws.dense_fallbacks(),
        0,
        "the structured reps must not silently measure the dense fallback"
    );
    for _ in 0..DENSE_REPS {
        let t0 = Instant::now();
        let grads = kkt::implicit_gradients_dense(&problem, &params, &x, &dl_dx)
            .expect("dense oracle must solve");
        dense_h.record_duration(t0.elapsed());
        assert!(grads.dl_dt[(0, 0)].is_finite());
    }
}

/// Online serving: replay a short synthetic trace through the exchange
/// daemon, with one snapshot/kill/restore cycle at the halfway mark so
/// the gate also times crash recovery. Latency percentiles surface as
/// `hist.serve.match_latency_secs.*` and the shed/deadline-miss
/// counters gate on increases like every other counter. The
/// bit-identity of the chaotic run is asserted by the serve crate's
/// differential tests; here we only keep the serving loop fast.
fn suite_serve_replay(cfg: &PerfgateConfig) {
    let trace = generate_trace(&TraceConfig {
        seed: cfg.seed.wrapping_add(23),
        duration_secs: 1800.0,
        mean_interarrival_secs: 60.0,
        mean_service_secs: 600.0,
        ..TraceConfig::default()
    });
    let config = DaemonConfig::default();
    let source = || MatrixSource::GroundTruth(ClusterPool::standard().setting(Setting::A));
    let dir = std::env::temp_dir().join(format!("mfcp_perfgate_serve_{}", std::process::id()));
    let outcome = replay_with_kills(&trace, &config, source, &dir, &[trace.len() / 2])
        .expect("serve replay with one kill/restore");
    std::fs::remove_dir_all(&dir).ok();
    assert!(outcome.counters.resolves > 0);
    assert!(outcome.last.is_some());
}

/// Blocked vs scalar Cholesky head-to-head. The default config lands on
/// the acceptance scale `N = 2000`; smoke configs ramp linearly so the
/// cubic kernel stays cheap in debug builds. Per-kernel wall times land
/// in the `chol.blocked_secs` / `chol.scalar_secs` histograms (ratio of
/// medians = blocked-kernel speedup), and a [`CholeskyBatch`] pass over
/// same-shape slices exercises the amortized batch API the MFCP-FG
/// sample pipelines lean on.
fn suite_chol_blocked(cfg: &PerfgateConfig) {
    let n = if cfg.tasks >= 12 {
        2000
    } else {
        32 * cfg.tasks.max(1)
    };
    let a = bench_spd(n, 0);
    let blocked_h = mfcp_obs::histogram("chol.blocked_secs");
    let scalar_h = mfcp_obs::histogram("chol.scalar_secs");
    let batch_h = mfcp_obs::histogram("chol.batch_secs");
    let mut blocked = Cholesky::empty();
    // Size the factor storage outside the timed reps: the gate measures
    // the steady-state refactor-reuse regime.
    blocked.refactor(&a).expect("benchmark matrix is SPD");
    let mut blocked_best = f64::INFINITY;
    for _ in 0..2 {
        let t0 = Instant::now();
        blocked.refactor(&a).expect("benchmark matrix is SPD");
        let dt = t0.elapsed().as_secs_f64();
        blocked_h.record(dt);
        blocked_best = blocked_best.min(dt);
    }
    let mut scalar = Cholesky::empty();
    scalar.refactor_scalar(&a).expect("benchmark matrix is SPD");
    let t0 = Instant::now();
    scalar.refactor_scalar(&a).expect("benchmark matrix is SPD");
    let scalar_secs = t0.elapsed().as_secs_f64();
    scalar_h.record(scalar_secs);
    if n >= 2000 {
        // Tripwire for the blocked kernel's raison d'être (measured
        // ~3.8x on the baseline machine; asserted with margin for noisy
        // runners). Only meaningful at the release-scale config — debug
        // builds and tiny sizes measure overhead, not the kernel.
        let ratio = scalar_secs / blocked_best;
        assert!(
            ratio >= 2.5,
            "blocked Cholesky speedup collapsed: {ratio:.2}x at n = {n}"
        );
    }
    // SIMD dispatch delta: re-run the blocked kernel with the scalar
    // arm pinned and publish the ratio (informational gauge). Both arms
    // compute bit-identical factors, so this isolates pure kernel
    // throughput. Under `MFCP_SIMD=scalar` the ratio sits at ~1.
    mfcp_linalg::simd::force_scalar(true);
    let t0 = Instant::now();
    blocked.refactor(&a).expect("benchmark matrix is SPD");
    let scalar_arm_secs = t0.elapsed().as_secs_f64();
    mfcp_linalg::simd::force_scalar(false);
    mfcp_obs::gauge("chol.simd_speedup").set(scalar_arm_secs / blocked_best.max(1e-12));
    // Batched same-shape refactors: one blocking plan across S slots.
    let nb = (n / 8).max(8);
    let mats: Vec<Matrix> = (0..4).map(|k| bench_spd(nb, k + 1)).collect();
    let mut batch = CholeskyBatch::new();
    let t0 = Instant::now();
    let results = batch.refactor_all(&mats, &ParallelConfig::default());
    batch_h.record_duration(t0.elapsed());
    assert!(results.iter().all(|r| r.is_ok()));
}

/// Deterministic, well-conditioned SPD matrix for the Cholesky suite:
/// off-diagonal amplitude scales as `1/n` so the unit-ish diagonal
/// dominates at every size.
fn bench_spd(n: usize, salt: usize) -> Matrix {
    let amp = 0.5 / n as f64;
    let mut a = Matrix::from_fn(n, n, |i, j| {
        ((((i * 31 + j * 17 + salt * 7) % 13) as f64 * 0.05).sin()) * amp
    });
    for i in 0..n {
        for j in 0..i {
            let s = 0.5 * (a[(i, j)] + a[(j, i)]);
            a[(i, j)] = s;
            a[(j, i)] = s;
        }
        a[(i, i)] = 2.0 + (i % 5) as f64 * 0.1;
    }
    a
}

/// Deterministic non-symmetric, comfortably non-singular matrix for the
/// LU/QR suites (diagonally dominant with one symmetry-breaking entry).
fn bench_general(n: usize, salt: usize) -> Matrix {
    let mut a = bench_spd(n, salt);
    if n > 1 {
        a[(0, n - 1)] += 0.7;
    }
    a
}

/// Blocked vs unblocked LU head-to-head. The default config lands on the
/// acceptance scale `N = 2000`; smoke configs ramp linearly. Both paths
/// run the same fused per-element arithmetic and produce bit-identical
/// factors (pinned by the linalg differential suite), so the ratio
/// isolates the panel + register-tile blocking win. Per-path wall times
/// land in `lu.blocked_secs` / `lu.scalar_secs`.
fn suite_lu_blocked(cfg: &PerfgateConfig) {
    let n = if cfg.tasks >= 12 {
        2000
    } else {
        32 * cfg.tasks.max(1)
    };
    let a = bench_general(n, 0);
    let blocked_h = mfcp_obs::histogram("lu.blocked_secs");
    let scalar_h = mfcp_obs::histogram("lu.scalar_secs");
    let mut blocked = Lu::empty();
    // Size the factor storage outside the timed reps (steady-state
    // refactor-reuse regime, same protocol as `chol_blocked`).
    blocked
        .refactor(&a)
        .expect("benchmark matrix is non-singular");
    let mut blocked_best = f64::INFINITY;
    for _ in 0..2 {
        let t0 = Instant::now();
        blocked
            .refactor(&a)
            .expect("benchmark matrix is non-singular");
        let dt = t0.elapsed().as_secs_f64();
        blocked_h.record(dt);
        blocked_best = blocked_best.min(dt);
    }
    let mut scalar = Lu::empty();
    scalar
        .refactor_scalar(&a)
        .expect("benchmark matrix is non-singular");
    let t0 = Instant::now();
    scalar
        .refactor_scalar(&a)
        .expect("benchmark matrix is non-singular");
    let scalar_secs = t0.elapsed().as_secs_f64();
    scalar_h.record(scalar_secs);
    if n >= 2000 {
        // Tripwire for the blocked elimination (measured ~4x on the
        // baseline machine; asserted with margin for noisy runners).
        let ratio = scalar_secs / blocked_best;
        assert!(
            ratio >= 2.0,
            "blocked LU speedup collapsed: {ratio:.2}x at n = {n}"
        );
    }
}

/// Blocked (compact-WY) vs unblocked Householder QR head-to-head at the
/// acceptance scale `N = 2000`. The unblocked reference applies
/// reflectors through strided column operations that are cache-hostile
/// at this size (~35x slower than the WY form), so its wall time is
/// measured once per process and reused across perfgate runs — the
/// blocked timings stay per-run. Wall times land in `qr.blocked_secs` /
/// `qr.scalar_secs`.
fn suite_qr_blocked(cfg: &PerfgateConfig) {
    let n = if cfg.tasks >= 12 {
        2000
    } else {
        32 * cfg.tasks.max(1)
    };
    let a = bench_general(n, 1);
    let blocked_h = mfcp_obs::histogram("qr.blocked_secs");
    let scalar_h = mfcp_obs::histogram("qr.scalar_secs");
    let mut blocked = Qr::empty();
    blocked.refactor(&a).expect("benchmark matrix is full-rank");
    let mut blocked_best = f64::INFINITY;
    for _ in 0..2 {
        let t0 = Instant::now();
        blocked.refactor(&a).expect("benchmark matrix is full-rank");
        let dt = t0.elapsed().as_secs_f64();
        blocked_h.record(dt);
        blocked_best = blocked_best.min(dt);
    }
    static SCALAR_SECS: Mutex<Vec<(usize, f64)>> = Mutex::new(Vec::new());
    let mut cache = SCALAR_SECS.lock().unwrap();
    let scalar_secs = match cache.iter().find(|(sn, _)| *sn == n) {
        Some(&(_, secs)) => secs,
        None => {
            let mut scalar = Qr::empty();
            let t0 = Instant::now();
            scalar
                .refactor_scalar(&a)
                .expect("benchmark matrix is full-rank");
            let secs = t0.elapsed().as_secs_f64();
            cache.push((n, secs));
            secs
        }
    };
    drop(cache);
    scalar_h.record(scalar_secs);
    if n >= 2000 {
        // Tripwire for the compact-WY rewrite; the margin is enormous
        // because the unblocked reference's strided traversal collapses
        // at release scale.
        let ratio = scalar_secs / blocked_best;
        assert!(
            ratio >= 2.0,
            "blocked QR speedup collapsed: {ratio:.2}x at n = {n}"
        );
    }
}

/// Sharded vs monolithic relaxed solve at matched solution quality.
/// The default config runs the acceptance scale `M = 100`, `N = 5000`;
/// smoke configs shrink both axes. The sharded solver gets 5 rounds of
/// 16 inner sweeps (80 column updates, safeguarded by its global line
/// search so the inner rate can run hot); the monolithic baseline gets
/// **twice** the sweeps — 160 fixed-step iterations at the solver's
/// default rate — and still lands at a slightly worse objective, so the
/// wall-time comparison is at-least-matched quality. Wall times land in
/// `shard.sharded_secs` / `shard.monolithic_secs`; convergence-level
/// equivalence (1e-6) is pinned by the optim crate's
/// `sharded_differential` suite.
fn suite_shard_solve(cfg: &PerfgateConfig) {
    let full_scale = cfg.tasks >= 12;
    let (m, n, rounds, inner, mono_iters) = if full_scale {
        (100, 5000, 5, 16, 160)
    } else {
        (8, (cfg.tasks * 25).max(16), 3, 8, 48)
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(29));
    let times = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..3.0));
    let rel = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.8..0.999));
    let problem = MatchingProblem::new(times, rel, 0.5);
    let params = RelaxationParams::default();
    let sharded_h = mfcp_obs::histogram("shard.sharded_secs");
    let mono_h = mfcp_obs::histogram("shard.monolithic_secs");
    let solver = ShardedSolver::new(
        ShardedOptions {
            shards: 4,
            max_rounds: rounds,
            inner_iters: inner,
            lr: 1.5,
            tol: 0.0,
            ..Default::default()
        },
        4,
    );
    let t0 = Instant::now();
    let sharded = solver.solve(&problem, &params);
    let sharded_secs = t0.elapsed().as_secs_f64();
    sharded_h.record(sharded_secs);
    let mono_opts = SolverOptions {
        max_iters: mono_iters,
        tol: 0.0,
        ..Default::default()
    };
    let t0 = Instant::now();
    let mono = solve_relaxed(&problem, &params, &mono_opts);
    let mono_secs = t0.elapsed().as_secs_f64();
    mono_h.record(mono_secs);
    let initial =
        mfcp_optim::objective::value(&problem, &params, &mfcp_optim::solver::uniform_init(m, n));
    assert!(
        sharded.objective.is_finite() && sharded.objective < initial,
        "sharded solve must descend: {} vs initial {initial}",
        sharded.objective
    );
    assert!(
        mono.objective.is_finite() && mono.objective < initial,
        "monolithic solve must descend: {} vs initial {initial}",
        mono.objective
    );
    if full_scale {
        // Both halves of the headline claim, as tripwires: sharded must
        // not be worse than the double-budget monolithic solve (both
        // trajectories are deterministic, so the 1e-3 slack only covers
        // cross-platform libm ulps), and must get there faster even
        // without real parallelism (~1.8x measured on a single-core
        // host; multi-core hosts only widen it).
        assert!(
            sharded.objective <= mono.objective + 1e-3,
            "sharded quality regressed: {} vs monolithic {}",
            sharded.objective,
            mono.objective
        );
        assert!(
            sharded_secs < mono_secs,
            "sharded solve slower than monolithic: {sharded_secs:.3}s vs {mono_secs:.3}s"
        );
    }
}

/// Learned-duals warm start head-to-head on *unseen* instances. A
/// [`LearnedDualHead`] is trained by observing cold-solved siblings of
/// a drifted convex family, then each held-out sibling is solved three
/// ways: cold (uniform seed), predict-seeded (fresh cache each time, so
/// only the head can help), and cache-warm (a drifted sibling's cached
/// optimum). Per-path iteration counts and wall times land in the
/// `learned.{cold,pred,warm}_iters` / `learned.{cold,pred,warm}_secs`
/// histograms and the iteration speedup in `gauge.learned.iter_speedup`.
/// Tripwires: every predict-seeded solve must report
/// [`CacheOutcome::Predicted`] and match the cold objective to `1e-8`;
/// at the default scale the deterministic iteration counts must show
/// predict-seeded ≥ 1.2× faster than cold, and (release builds only)
/// predict-seeded wall time must not be worse than cold.
fn suite_learned_duals(cfg: &PerfgateConfig) {
    const M: usize = 3;
    let full_scale = cfg.tasks >= 12;
    let n = cfg.tasks.max(4);
    let params = RelaxationParams {
        rho: 0.05,
        ..Default::default()
    };
    // Step tolerance 1e-8 (not the differential suite's 1e-12): both
    // paths still land well inside the 1e-8 objective-gap bar (the
    // entropic objective is flat to ~ρ·dist² around the optimum), but
    // the seed's head start is not drowned by the deep-tolerance tail
    // that every start pays identically — at 1e-12 even a perfect seed
    // saves under 5% of the iterations.
    let mut solver = RobustSolver::new(params);
    solver.solver_opts = SolverOptions {
        max_iters: 20_000,
        tol: 1e-8,
        lr: 0.1,
        ..Default::default()
    };
    solver.policy.stall_checks = usize::MAX;

    // One base instance; siblings drift the data ±1% around it. The
    // family mimics successive exchange rounds: same structure,
    // slightly different measurements, optima that cluster.
    let seed0 = cfg.seed.wrapping_add(31);
    let mut rng = StdRng::seed_from_u64(seed0);
    let t_base = Matrix::from_fn(M, n, |_, _| rng.gen_range(0.7..1.8));
    let a_base = Matrix::from_fn(M, n, |_, _| rng.gen_range(0.75..1.0));
    let sibling = |k: u64| {
        let mut rng = StdRng::seed_from_u64(seed0.wrapping_add(1 + k));
        let t = Matrix::from_fn(M, n, |i, j| {
            t_base[(i, j)] * (1.0 + 0.01 * rng.gen_range(-1.0..1.0))
        });
        let a = Matrix::from_fn(M, n, |i, j| {
            (a_base[(i, j)] * (1.0 + 0.01 * rng.gen_range(-1.0..1.0))).clamp(0.0, 1.0)
        });
        MatchingProblem::new(t, a, 0.6)
    };

    // Train the head on cold-solved siblings (never the eval ones).
    let (train_count, epochs) = if full_scale { (24, 1500) } else { (6, 30) };
    let mut head = LearnedDualHead::new(M, seed0);
    let train: Vec<(MatchingProblem, Matrix)> = (0..train_count)
        .map(|k| {
            let p = sibling(k);
            let x = solver.solve(&p).expect("train solve").x;
            (p, x)
        })
        .collect();
    for _ in 0..epochs {
        for (p, x) in &train {
            head.observe(p, &params, x);
        }
    }
    assert!(head.ready(), "training must clear the readiness bar");

    let cold_iters_h = mfcp_obs::histogram("learned.cold_iters");
    let pred_iters_h = mfcp_obs::histogram("learned.pred_iters");
    let warm_iters_h = mfcp_obs::histogram("learned.warm_iters");
    let cold_secs_h = mfcp_obs::histogram("learned.cold_secs");
    let pred_secs_h = mfcp_obs::histogram("learned.pred_secs");
    let warm_secs_h = mfcp_obs::histogram("learned.warm_secs");

    let iters_of = |sol: &mfcp_optim::RobustSolution| -> usize {
        sol.diagnostics.attempts.iter().map(|a| a.iterations).sum()
    };

    let (mut cold_total, mut pred_total) = (0usize, 0usize);
    let (mut cold_wall, mut pred_wall) = (0.0f64, 0.0f64);
    for k in 0..4u64 {
        let p = sibling(1000 + k);

        let t0 = Instant::now();
        let cold = solver.solve(&p).expect("cold solve");
        let secs = t0.elapsed().as_secs_f64();
        cold_secs_h.record(secs);
        cold_wall += secs;
        cold_iters_h.record(iters_of(&cold) as f64);
        cold_total += iters_of(&cold);

        // Predict-seeded, fresh cache: the head is the only seed source.
        let mut cache = WarmStartCache::new();
        let t0 = Instant::now();
        let pred = solver
            .solve_with_predictor(&p, &mut cache, Some(&head))
            .expect("predicted solve");
        let secs = t0.elapsed().as_secs_f64();
        pred_secs_h.record(secs);
        pred_wall += secs;
        pred_iters_h.record(iters_of(&pred) as f64);
        pred_total += iters_of(&pred);
        assert_eq!(
            pred.diagnostics.cache,
            Some(CacheOutcome::Predicted),
            "a ready head on an in-family instance must seed the solve"
        );
        assert!(
            (cold.objective - pred.objective).abs() <= 1e-8,
            "predicted solve off the cold objective: {} vs {}",
            pred.objective,
            cold.objective
        );

        // Cache-warm: a drifted sibling's optimum under the shared
        // structural fingerprint (the existing warm-start baseline).
        let mut warm_cache = WarmStartCache::new();
        let _ = solver
            .solve_with_cache(&sibling(2000 + k), &mut warm_cache)
            .expect("sibling solve populates the cache");
        let t0 = Instant::now();
        let warm = solver
            .solve_with_cache(&p, &mut warm_cache)
            .expect("warm solve");
        warm_secs_h.record(t0.elapsed().as_secs_f64());
        warm_iters_h.record(iters_of(&warm) as f64);
        assert_eq!(warm.diagnostics.cache, Some(CacheOutcome::Hit));
    }
    mfcp_obs::gauge("learned.iter_speedup").set(cold_total as f64 / pred_total.max(1) as f64);

    if full_scale {
        // Iteration counts are deterministic, so this tripwire holds in
        // every build profile: the acceptance bar is ≥1.2× fewer PGD
        // iterations than cold on unseen instances.
        assert!(
            5 * cold_total >= 6 * pred_total,
            "predict-seeded speedup below 1.2x: {cold_total} cold iters vs {pred_total} predicted"
        );
        if !cfg!(debug_assertions) {
            assert!(
                pred_wall < cold_wall,
                "predict-seeded wall time worse than cold: {pred_wall:.4}s vs {cold_wall:.4}s"
            );
        }
    }
}

/// Live ops surface costs, both sides of it: (a) request latency for
/// every `mfcp_obs::http` endpoint against a populated registry, landing
/// in the `obs_http.request_secs` histogram plus a per-endpoint counter;
/// (b) a serve-replay overhead A/B — the same short trace replayed with
/// the ops surface off and on (`obs_http.replay_off_secs` /
/// `obs_http.replay_on_secs`), with a release-build tripwire holding the
/// enabled run inside the 5% overhead budget DESIGN.md records.
fn suite_obs_http(cfg: &PerfgateConfig) {
    // --- endpoint latency over a populated registry ---
    let series = Arc::new(mfcp_obs::TimeSeries::new(
        mfcp_obs::TimeSeriesConfig::default(),
    ));
    mfcp_obs::counter("obs_http.bench.events").add(41);
    mfcp_obs::gauge("obs_http.bench.level").set(3.5);
    let h_seed = mfcp_obs::histogram("obs_http.bench.lat");
    for i in 0..64 {
        h_seed.record(0.001 * (1 + i % 7) as f64);
    }
    series.sample_now();
    mfcp_obs::counter("obs_http.bench.events").add(17);
    series.sample_now();
    let server =
        mfcp_obs::ObsServer::start(mfcp_obs::HttpConfig::default(), Some(Arc::clone(&series)))
            .expect("ops server binds an ephemeral port");
    let addr = server.local_addr();
    let h_request = mfcp_obs::histogram("obs_http.request_secs");
    const ENDPOINT_REPS: usize = 8;
    for path in [
        "/healthz",
        "/metrics",
        "/metrics.txt",
        "/slo",
        "/trace",
        "/timeseries?window=32",
        "/dashboard",
    ] {
        for _ in 0..ENDPOINT_REPS {
            let t0 = Instant::now();
            let reply = http_get(addr, path);
            h_request.record_duration(t0.elapsed());
            assert!(
                reply.starts_with("HTTP/1.1 200"),
                "{path} did not answer 200: {reply}"
            );
        }
        mfcp_obs::counter("obs_http.requests").inc();
    }
    drop(server);

    // --- serving overhead A/B: ops surface off vs on ---
    let trace = generate_trace(&TraceConfig {
        seed: cfg.seed.wrapping_add(31),
        // Long enough that the serving loop dominates the measurement:
        // at the serve_replay suite's 30-event scale the replay is ~5 ms
        // and the ops surface's fixed per-process costs (sampler ticks,
        // allocator state) masquerade as double-digit relative overhead.
        duration_secs: 7200.0,
        mean_interarrival_secs: 30.0,
        mean_service_secs: 900.0,
        ..TraceConfig::default()
    });
    let source = || MatrixSource::GroundTruth(ClusterPool::standard().setting(Setting::A));
    let off_h = mfcp_obs::histogram("obs_http.replay_off_secs");
    let on_h = mfcp_obs::histogram("obs_http.replay_on_secs");
    let (mut off_best, mut on_best) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        for enabled in [false, true] {
            let config = DaemonConfig {
                metrics_addr: enabled.then(|| "127.0.0.1:0".to_string()),
                ..DaemonConfig::default()
            };
            let mut daemon = mfcp_serve::ExchangeDaemon::new(config, source());
            assert_eq!(daemon.ops_addr().is_some(), enabled);
            let t0 = Instant::now();
            let outcome = mfcp_serve::replay(&mut daemon, &trace);
            let dt = t0.elapsed().as_secs_f64();
            assert!(outcome.counters.resolves > 0);
            if enabled {
                on_h.record(dt);
                on_best = on_best.min(dt);
            } else {
                off_h.record(dt);
                off_best = off_best.min(dt);
            }
        }
    }
    // Min-of-3 is robust to scheduler noise, but a ~240 ms replay on a
    // single-core runner still jitters a few percent run to run, so the
    // in-suite tripwire sits at 3x the 5% budget: it catches a real
    // collapse (per-event locking, a hot sampler loop) without flaking
    // on scheduler noise. The <5% budget itself is held by the measured
    // medians recorded in DESIGN.md ("Live ops surface"). Only
    // meaningful in release at the default scale — debug builds and
    // smoke configs measure constant costs, not the serving loop.
    if !cfg!(debug_assertions) && cfg.tasks >= 12 {
        let overhead = on_best / off_best - 1.0;
        assert!(
            overhead < 0.15,
            "ops surface overhead collapsed past 3x the 5% budget: {:.1}% \
             ({on_best:.4}s on vs {off_best:.4}s off)",
            overhead * 100.0
        );
    }
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write as _};
    let mut s = std::net::TcpStream::connect(addr).expect("connect ops server");
    s.write_all(format!("GET {path} HTTP/1.1\r\nHost: perfgate\r\n\r\n").as_bytes())
        .expect("send request");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read response");
    out
}

type SuiteFn = fn(&PerfgateConfig);

/// Suite table: `(name, inner_reps, workload)`. `inner_reps` is the
/// batched-repetition count: each timed run executes the workload that
/// many times and divides the elapsed wall by it, so sub-millisecond
/// suites (`pool_throughput`, `fault_replay`) gate on a stable
/// multi-millisecond measurement window instead of scheduler noise.
/// Counters in those suites accumulate across the inner reps; the
/// baseline is recorded the same way, so comparisons stay consistent.
const SUITES: [(&str, usize, SuiteFn); 15] = [
    ("solve_ad", 1, suite_solve_ad),
    ("solve_fg", 1, suite_solve_fg),
    ("train_round", 1, suite_train_round),
    ("pool_throughput", 32, suite_pool_throughput),
    ("fault_replay", 16, suite_fault_replay),
    ("solve_warm", 1, suite_solve_warm),
    ("batch_solve", 1, suite_batch_solve),
    ("kkt_grad", 1, suite_kkt_grad),
    ("serve_replay", 1, suite_serve_replay),
    ("chol_blocked", 1, suite_chol_blocked),
    ("lu_blocked", 1, suite_lu_blocked),
    ("qr_blocked", 1, suite_qr_blocked),
    ("shard_solve", 1, suite_shard_solve),
    ("obs_http", 1, suite_obs_http),
    ("learned_duals", 1, suite_learned_duals),
];

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn median(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

fn metrics_from(snap: &mfcp_obs::Snapshot) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for (name, v) in &snap.counters {
        out.insert(name.clone(), *v as f64);
    }
    for (name, v) in &snap.gauges {
        if v.is_finite() {
            out.insert(format!("gauge.{name}"), *v);
        }
    }
    for (name, h) in &snap.histograms {
        for (label, q) in [("p50", 0.5), ("p95", 0.95)] {
            let v = h.quantile(q);
            if v.is_finite() {
                out.insert(format!("hist.{name}.{label}"), v);
            }
        }
    }
    out
}

/// Runs every suite `cfg.runs` times and aggregates. When `trace_sink`
/// is provided, the flight-recorder contents of the final `train_round`
/// run are exported as Chrome trace JSON into it.
pub fn run_perfgate(cfg: &PerfgateConfig, mut trace_sink: Option<&mut String>) -> PerfgateReport {
    let runs = cfg.runs.max(1);
    let mut suites = Vec::with_capacity(SUITES.len());
    for (name, inner_reps, workload) in SUITES {
        let inner_reps = inner_reps.max(1);
        let mut wall_secs = Vec::with_capacity(runs);
        let mut metrics = BTreeMap::new();
        for run in 0..runs {
            mfcp_obs::set_enabled(true);
            mfcp_obs::reset();
            let t0 = Instant::now();
            for _ in 0..inner_reps {
                workload(cfg);
            }
            wall_secs.push(t0.elapsed().as_secs_f64() / inner_reps as f64);
            if run + 1 == runs {
                metrics = metrics_from(&mfcp_obs::snapshot());
                if name == "train_round" {
                    if let Some(sink) = trace_sink.as_deref_mut() {
                        *sink = mfcp_obs::trace::drain().to_chrome_json();
                    }
                }
            }
        }
        let mut sorted = wall_secs.clone();
        sorted.sort_by(f64::total_cmp);
        suites.push(SuiteResult {
            name: name.to_string(),
            median_wall_secs: median(&sorted),
            p95_wall_secs: percentile(&sorted, 0.95),
            wall_secs,
            metrics,
        });
    }
    PerfgateReport {
        schema_version: SCHEMA_VERSION,
        created_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        os: std::env::consts::OS.to_string(),
        arch: std::env::consts::ARCH.to_string(),
        threads: std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1),
        config: cfg.clone(),
        suites,
        thresholds: BTreeMap::new(),
    }
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

impl PerfgateReport {
    /// Serializes the report as schema-stable JSON (keys in fixed order,
    /// suites in suite order, metric maps sorted by name).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(out, "  \"created_unix\": {},", self.created_unix);
        let _ = writeln!(
            out,
            "  \"env\": {{\"os\": {}, \"arch\": {}, \"threads\": {}}},",
            json::escape(&self.os),
            json::escape(&self.arch),
            self.threads
        );
        let _ = writeln!(
            out,
            "  \"config\": {{\"runs\": {}, \"tasks\": {}, \"rounds\": {}, \"seed\": {}}},",
            self.config.runs, self.config.tasks, self.config.rounds, self.config.seed
        );
        out.push_str("  \"thresholds\": {");
        for (i, (k, v)) in self.thresholds.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {}", json::escape(k), json::number(*v));
        }
        out.push_str("},\n");
        out.push_str("  \"suites\": [\n");
        for (i, s) in self.suites.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": {},", json::escape(&s.name));
            let _ = writeln!(out, "      \"runs\": {},", s.wall_secs.len());
            let _ = writeln!(
                out,
                "      \"median_wall_secs\": {},",
                json::number(s.median_wall_secs)
            );
            let _ = writeln!(
                out,
                "      \"p95_wall_secs\": {},",
                json::number(s.p95_wall_secs)
            );
            let walls: Vec<String> = s.wall_secs.iter().map(|w| json::number(*w)).collect();
            let _ = writeln!(out, "      \"wall_secs\": [{}],", walls.join(", "));
            out.push_str("      \"metrics\": {");
            for (j, (k, v)) in s.metrics.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\n        {}: {}", json::escape(k), json::number(*v));
            }
            if !s.metrics.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("}\n");
            out.push_str(if i + 1 == self.suites.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Deserializes a report (or baseline) previously written by
    /// [`PerfgateReport::to_json`]. Unknown keys are ignored so a newer
    /// binary can read an older baseline.
    pub fn from_json(doc: &Json) -> Result<PerfgateReport, String> {
        let num = |j: Option<&Json>, what: &str| -> Result<f64, String> {
            j.and_then(Json::as_f64)
                .ok_or_else(|| format!("missing or non-numeric {what}"))
        };
        let schema_version = num(doc.get("schema_version"), "schema_version")? as u64;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {schema_version} (expected {SCHEMA_VERSION})"
            ));
        }
        let env = doc.get("env");
        let config = doc.get("config");
        let mut thresholds = BTreeMap::new();
        if let Some(t) = doc.get("thresholds").and_then(Json::as_object) {
            for (k, v) in t {
                thresholds.insert(
                    k.clone(),
                    v.as_f64()
                        .ok_or_else(|| format!("threshold {k} not numeric"))?,
                );
            }
        }
        let mut suites = Vec::new();
        for (i, s) in doc
            .get("suites")
            .and_then(Json::as_array)
            .ok_or("missing suites array")?
            .iter()
            .enumerate()
        {
            let name = s
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("suite {i}: missing name"))?
                .to_string();
            let wall_secs: Vec<f64> = s
                .get("wall_secs")
                .and_then(Json::as_array)
                .map(|a| a.iter().filter_map(Json::as_f64).collect())
                .unwrap_or_default();
            let mut metrics = BTreeMap::new();
            if let Some(m) = s.get("metrics").and_then(Json::as_object) {
                for (k, v) in m {
                    metrics.insert(
                        k.clone(),
                        v.as_f64()
                            .ok_or_else(|| format!("suite {name}: metric {k} not numeric"))?,
                    );
                }
            }
            suites.push(SuiteResult {
                median_wall_secs: num(s.get("median_wall_secs"), "median_wall_secs")?,
                p95_wall_secs: num(s.get("p95_wall_secs"), "p95_wall_secs")?,
                name,
                wall_secs,
                metrics,
            });
        }
        Ok(PerfgateReport {
            schema_version,
            created_unix: num(doc.get("created_unix"), "created_unix").unwrap_or(0.0) as u64,
            os: env
                .and_then(|e| e.get("os"))
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            arch: env
                .and_then(|e| e.get("arch"))
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            threads: env
                .and_then(|e| e.get("threads"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0) as u64,
            config: PerfgateConfig {
                runs: num(config.and_then(|c| c.get("runs")), "config.runs")? as usize,
                tasks: num(config.and_then(|c| c.get("tasks")), "config.tasks")? as usize,
                rounds: num(config.and_then(|c| c.get("rounds")), "config.rounds")? as usize,
                seed: num(config.and_then(|c| c.get("seed")), "config.seed")? as u64,
            },
            suites,
            thresholds,
        })
    }

    /// Gates `self` (the current run) against `baseline`. Returns every
    /// violation found; empty means the gate passes.
    ///
    /// * `median_wall_secs` fails when it grew more than the tolerance.
    /// * Counter metrics fail on relative *increase* beyond the
    ///   tolerance; a baseline value of zero cannot gate relatively and
    ///   is skipped. `hist.*` and `gauge.*` metrics are informational
    ///   only.
    /// * Tolerance per metric: `baseline.thresholds["<suite>.<metric>"]`
    ///   when present, else `default_tolerance`.
    /// * A suite present in the baseline but missing here is a violation
    ///   (the gate must not silently shrink its coverage).
    pub fn compare(&self, baseline: &PerfgateReport, default_tolerance: f64) -> Vec<Violation> {
        let tol_for = |suite: &str, metric: &str| -> f64 {
            baseline
                .thresholds
                .get(&format!("{suite}.{metric}"))
                .copied()
                .unwrap_or(default_tolerance)
        };
        let mut violations = Vec::new();
        for base in &baseline.suites {
            let Some(cur) = self.suites.iter().find(|s| s.name == base.name) else {
                violations.push(Violation {
                    suite: base.name.clone(),
                    metric: "missing_suite".into(),
                    baseline: 1.0,
                    current: 0.0,
                    rel_change: -1.0,
                    tolerance: 0.0,
                });
                continue;
            };
            let mut gate = |metric: &str, base_v: f64, cur_v: f64| {
                if base_v <= 0.0 || !base_v.is_finite() || !cur_v.is_finite() {
                    return;
                }
                let rel = (cur_v - base_v) / base_v;
                let tol = tol_for(&base.name, metric);
                if rel > tol {
                    violations.push(Violation {
                        suite: base.name.clone(),
                        metric: metric.to_string(),
                        baseline: base_v,
                        current: cur_v,
                        rel_change: rel,
                        tolerance: tol,
                    });
                }
            };
            gate(
                "median_wall_secs",
                base.median_wall_secs,
                cur.median_wall_secs,
            );
            for (name, base_v) in &base.metrics {
                // Histogram quantiles and gauge levels are informational:
                // bucket resolution / end-of-run levels are poor gates.
                if name.starts_with("hist.") || name.starts_with("gauge.") {
                    continue;
                }
                if let Some(cur_v) = cur.metrics.get(name) {
                    gate(name, *base_v, *cur_v);
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "full-scale probe for tuning the learned_duals tripwire"]
    fn learned_duals_full_scale_probe() {
        suite_learned_duals(&PerfgateConfig::default());
    }

    fn small_report() -> PerfgateReport {
        let mut metrics = BTreeMap::new();
        metrics.insert("optim.robust.attempts".to_string(), 10.0);
        metrics.insert("train.rollbacks".to_string(), 1.0);
        metrics.insert("hist.train.round.loss.p50".to_string(), 0.25);
        metrics.insert("gauge.serve.queue.pending".to_string(), 4.0);
        PerfgateReport {
            schema_version: SCHEMA_VERSION,
            created_unix: 1_700_000_000,
            os: "linux".into(),
            arch: "x86_64".into(),
            threads: 8,
            config: PerfgateConfig::default(),
            suites: vec![SuiteResult {
                name: "solve_ad".into(),
                wall_secs: vec![0.5, 0.4, 0.6],
                median_wall_secs: 0.5,
                p95_wall_secs: 0.6,
                metrics,
            }],
            thresholds: BTreeMap::new(),
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = small_report();
        assert!(r.compare(&r, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn injected_slowdown_fails_check() {
        let base = small_report();
        let mut slow = base.clone();
        slow.suites[0].median_wall_secs *= 2.0; // +100% >> 25%
        let violations = slow.compare(&base, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "median_wall_secs");
        assert!(violations[0].rel_change > 0.9);
        // The other direction (a speedup) is not a violation.
        assert!(base.compare(&slow, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn counter_regressions_gate_but_hist_quantiles_do_not() {
        let base = small_report();
        let mut cur = base.clone();
        *cur.suites[0]
            .metrics
            .get_mut("optim.robust.attempts")
            .unwrap() = 20.0;
        *cur.suites[0]
            .metrics
            .get_mut("hist.train.round.loss.p50")
            .unwrap() = 100.0;
        *cur.suites[0]
            .metrics
            .get_mut("gauge.serve.queue.pending")
            .unwrap() = 100.0;
        let violations = cur.compare(&base, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].metric, "optim.robust.attempts");
    }

    #[test]
    fn per_metric_threshold_overrides_default() {
        let mut base = small_report();
        base.thresholds
            .insert("solve_ad.median_wall_secs".to_string(), 3.0);
        let mut cur = base.clone();
        cur.suites[0].median_wall_secs *= 2.0;
        // +100% clears the 300% override even though it fails the default.
        assert!(cur.compare(&base, DEFAULT_TOLERANCE).is_empty());
        base.thresholds.clear();
        assert!(!cur.compare(&base, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn missing_suite_is_a_violation() {
        let base = small_report();
        let mut cur = base.clone();
        cur.suites.clear();
        let violations = cur.compare(&base, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "missing_suite");
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = small_report();
        r.thresholds.insert("solve_ad.median_wall_secs".into(), 0.5);
        let json_text = r.to_json();
        let doc = json::parse(&json_text).unwrap_or_else(|e| panic!("{e}\n{json_text}"));
        let back = PerfgateReport::from_json(&doc).expect("deserializes");
        assert_eq!(back.suites, r.suites);
        assert_eq!(back.thresholds, r.thresholds);
        assert_eq!(back.config.runs, r.config.runs);
        assert_eq!(back.schema_version, SCHEMA_VERSION);
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut r = small_report();
        r.schema_version = SCHEMA_VERSION + 1;
        let doc = json::parse(&r.to_json()).unwrap();
        assert!(PerfgateReport::from_json(&doc).is_err());
    }

    /// End-to-end smoke at the smallest sizes: every suite produces a
    /// median and at least one metric, and the report's JSON parses.
    #[test]
    fn tiny_pass_covers_every_suite() {
        let cfg = PerfgateConfig {
            runs: 1,
            tasks: 6,
            rounds: 1,
            seed: 3,
        };
        let mut trace = String::new();
        let report = run_perfgate(&cfg, Some(&mut trace));
        assert_eq!(report.suites.len(), 15);
        for s in &report.suites {
            assert!(s.median_wall_secs.is_finite() && s.median_wall_secs >= 0.0);
            assert!(!s.metrics.is_empty(), "suite {} has no metrics", s.name);
        }
        assert!(
            report.suites[2].metrics.contains_key("train.rounds"),
            "train_round suite records training counters"
        );
        let doc = json::parse(&report.to_json()).expect("report JSON is valid");
        assert!(PerfgateReport::from_json(&doc).is_ok());
        // The train_round trace export is valid Chrome trace JSON.
        let trace_doc = json::parse(&trace).expect("trace JSON is valid");
        assert!(trace_doc.get("traceEvents").is_some());
    }
}
