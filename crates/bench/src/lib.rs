//! Shared experiment harness for regenerating the paper's tables and
//! figures.
//!
//! Every binary in this crate follows the same protocol, mirroring §4.1:
//! for each random seed, (1) generate a fresh platform dataset for the
//! chosen cluster setting, (2) train each method on the training half,
//! (3) evaluate regret / reliability / utilization over sampled test
//! rounds against the exact branch-and-bound optimum, and (4) aggregate
//! mean ± std across seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod perfgate;
pub mod report;

use mfcp_core::eval::{evaluate_method, EvalOptions, MethodScores};
use mfcp_core::methods::{PerformancePredictor, TamPredictor};
use mfcp_core::train::{
    train_mfcp, train_tsm, train_ucb, GradientMode, MfcpTrainConfig, TsmTrainConfig,
};
use mfcp_optim::solver::SolverOptions;
use mfcp_optim::zeroth::ZerothOrderOptions;
use mfcp_optim::{BarrierKind, CostKind, RelaxationParams, SpeedupCurve};
use mfcp_parallel::ParallelConfig;
use mfcp_platform::dataset::{NoiseConfig, PlatformDataset};
use mfcp_platform::embedding::FeatureEmbedder;
use mfcp_platform::metrics::MeanStd;
use mfcp_platform::settings::{ClusterPool, Setting};
use mfcp_platform::task::TaskGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::path::Path;

/// Which system to train and evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// Task-agnostic averages.
    Tam,
    /// Two-stage MSE predictors.
    Tsm,
    /// Robust confidence-bound matching.
    Ucb,
    /// MFCP with analytic KKT gradients.
    MfcpAd,
    /// MFCP with zeroth-order forward gradients.
    MfcpFg,
}

impl MethodKind {
    /// Paper display name.
    pub fn name(self) -> &'static str {
        match self {
            MethodKind::Tam => "TAM",
            MethodKind::Tsm => "TSM",
            MethodKind::Ucb => "UCB",
            MethodKind::MfcpAd => "MFCP-AD",
            MethodKind::MfcpFg => "MFCP-FG",
        }
    }

    /// The paper's five methods in display order.
    pub const ALL: [MethodKind; 5] = [
        MethodKind::Tam,
        MethodKind::Tsm,
        MethodKind::Ucb,
        MethodKind::MfcpAd,
        MethodKind::MfcpFg,
    ];
}

/// One experiment's full configuration.
#[derive(Debug, Clone)]
pub struct ExperimentSetup {
    /// Cluster setting (A/B/C).
    pub setting: Setting,
    /// Training tasks sampled per seed.
    pub n_train: usize,
    /// Test tasks sampled per seed.
    pub n_test: usize,
    /// Reliability threshold `γ`.
    pub gamma: f64,
    /// Tasks per matching round `N`.
    pub round_size: usize,
    /// Evaluation rounds per seed.
    pub eval_rounds: usize,
    /// Speedup curve applied to every cluster (`None` = sequential).
    pub speedup: Option<SpeedupCurve>,
    /// Relaxation hyper-parameters.
    pub relaxation: RelaxationParams,
    /// Decision-focused training rounds for MFCP.
    pub mfcp_rounds: usize,
    /// Supervised warm-start / baseline training config.
    pub supervised: TsmTrainConfig,
    /// UCB confidence width.
    pub kappa: f64,
    /// Measurement noise on the training data.
    pub noise: NoiseConfig,
    /// Use the lossy (projection-only) task embedding instead of the raw
    /// structural features. The paper's GNN embedder is similarly
    /// imperfect; an information bottleneck forces predictors to
    /// *underfit*, which is precisely the regime where matching-focused
    /// training pays off (Fig. 2's predictor is a linear regression).
    pub lossy_embedding: bool,
}

impl Default for ExperimentSetup {
    fn default() -> Self {
        ExperimentSetup {
            setting: Setting::A,
            // The paper's regime: physical measurements are expensive and
            // noisy, and the predictors are deliberately small — the
            // capacity limit is what gives matching-focused training its
            // edge (Fig. 2: the predictor must choose *where* to be
            // accurate).
            n_train: 100,
            n_test: 60,
            gamma: 0.82,
            round_size: 5,
            eval_rounds: 30,
            speedup: None,
            relaxation: RelaxationParams::default(),
            mfcp_rounds: 240,
            supervised: TsmTrainConfig {
                hidden: vec![8],
                epochs: 200,
                ..Default::default()
            },
            kappa: 1.0,
            noise: NoiseConfig {
                time_rel_std: 0.10,
                reliability_trials: 15,
            },
            lossy_embedding: true,
        }
    }
}

impl ExperimentSetup {
    /// The task embedder implied by `lossy_embedding`.
    pub fn embedder(&self) -> FeatureEmbedder {
        if self.lossy_embedding {
            FeatureEmbedder::bottlenecked_platform()
        } else {
            FeatureEmbedder::default_platform()
        }
    }

    fn speedup_vec(&self, m: usize) -> Vec<SpeedupCurve> {
        match self.speedup {
            Some(curve) => vec![curve; m],
            None => Vec::new(),
        }
    }

    /// Generates the per-seed train/test datasets.
    pub fn datasets(&self, seed: u64) -> (PlatformDataset, PlatformDataset) {
        let model = ClusterPool::standard().setting(self.setting);
        let embedder = self.embedder();
        let generator = TaskGenerator::default();
        let noise = self.noise;
        let mut rng = StdRng::seed_from_u64(seed);
        let train = PlatformDataset::generate(
            &model,
            &embedder,
            &generator,
            self.n_train,
            &noise,
            &mut rng,
        );
        let test =
            PlatformDataset::generate(&model, &embedder, &generator, self.n_test, &noise, &mut rng);
        (train, test)
    }

    /// Builds the MFCP training config for a gradient mode.
    pub fn mfcp_config(&self, m: usize, mode: GradientMode) -> MfcpTrainConfig {
        MfcpTrainConfig {
            warm_start: self.supervised.clone(),
            rounds: self.mfcp_rounds,
            round_size: self.round_size,
            lr: 5e-3,
            gamma: self.gamma,
            speedup: self.speedup_vec(m),
            relaxation: self.relaxation,
            // Implicit differentiation assumes a converged stationary
            // point; give the training-time solver a tight budget.
            solver: SolverOptions {
                max_iters: 2000,
                tol: 1e-11,
                ..Default::default()
            },
            mode,
            alternating: true,
            ..Default::default()
        }
    }

    /// Default zeroth-order options for MFCP-FG.
    pub fn zeroth_options(&self) -> ZerothOrderOptions {
        ZerothOrderOptions {
            delta: 0.05,
            samples: 8,
            parallel: ParallelConfig::default(),
        }
    }

    /// Evaluation options matching this setup.
    pub fn eval_options(&self, m: usize) -> EvalOptions {
        EvalOptions {
            round_size: self.round_size,
            rounds: self.eval_rounds,
            gamma: self.gamma,
            speedup: self.speedup_vec(m),
            relaxation: self.relaxation,
            ..Default::default()
        }
    }

    /// Trains one method on `train` (3 clusters) and returns it boxed.
    pub fn train_method(
        &self,
        kind: MethodKind,
        train: &PlatformDataset,
        seed: u64,
    ) -> Box<dyn PerformancePredictor> {
        let m = train.clusters();
        match kind {
            MethodKind::Tam => Box::new(TamPredictor::fit(train)),
            MethodKind::Tsm => Box::new(train_tsm(train, &self.supervised, seed)),
            MethodKind::Ucb => Box::new(train_ucb(train, &self.supervised, self.kappa, seed)),
            MethodKind::MfcpAd => {
                let cfg = self.mfcp_config(m, GradientMode::Analytic);
                Box::new(train_mfcp(train, &cfg, seed).0)
            }
            MethodKind::MfcpFg => {
                let cfg = self.mfcp_config(m, GradientMode::ForwardGradient(self.zeroth_options()));
                Box::new(train_mfcp(train, &cfg, seed).0)
            }
        }
    }

    /// Runs one method for one seed: fresh data, train, evaluate.
    pub fn run_method_seed(&self, kind: MethodKind, seed: u64) -> MethodScores {
        let (train, test) = self.datasets(seed);
        let method = self.train_method(kind, &train, seed.wrapping_add(101));
        let opts = self.eval_options(test.clusters());
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(707));
        evaluate_method(method.as_ref(), &test, &opts, &mut rng)
    }
}

/// Per-method aggregate over seeds (mean of per-seed means, std across
/// seeds — the paper's error bars).
#[derive(Debug, Clone)]
pub struct AggregateScores {
    /// Method display name.
    pub method: String,
    /// Regret across seeds.
    pub regret: MeanStd,
    /// Reliability across seeds.
    pub reliability: MeanStd,
    /// Utilization across seeds.
    pub utilization: MeanStd,
    /// Per-seed mean regrets, aligned with the seed list (for paired
    /// comparisons across methods).
    pub per_seed_regret: Vec<f64>,
}

/// Runs `kind` over all `seeds` and aggregates.
pub fn run_method(setup: &ExperimentSetup, kind: MethodKind, seeds: &[u64]) -> AggregateScores {
    let per_seed: Vec<MethodScores> = seeds
        .iter()
        .map(|&s| setup.run_method_seed(kind, s))
        .collect();
    AggregateScores {
        method: kind.name().into(),
        regret: MeanStd::from_values(per_seed.iter().map(|s| s.regret.mean())),
        reliability: MeanStd::from_values(per_seed.iter().map(|s| s.reliability.mean())),
        utilization: MeanStd::from_values(per_seed.iter().map(|s| s.utilization.mean())),
        per_seed_regret: per_seed.iter().map(|s| s.regret.mean()).collect(),
    }
}

/// Renders a paper-style table and returns it (also suitable for stdout).
pub fn format_table(title: &str, rows: &[AggregateScores]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let _ = writeln!(
        out,
        "{:<10} {:>18} {:>18} {:>18}",
        "Method", "Regret", "Reliability", "Utilization"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>18} {:>18} {:>18}",
            r.method,
            r.regret.to_string(),
            r.reliability.to_string(),
            r.utilization.to_string()
        );
    }
    out
}

/// Writes rows as CSV under `results/` (creating the directory).
pub fn write_csv(path: &str, header: &str, lines: &[String]) -> std::io::Result<()> {
    let path = Path::new(path);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut content = String::from(header);
    content.push('\n');
    for l in lines {
        content.push_str(l);
        content.push('\n');
    }
    std::fs::write(path, content)
}

/// The ablation variants of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AblationVariant {
    /// (1) Linear Σ-of-times cost instead of the smoothed max.
    LinearCost,
    /// (2) Hard hinge penalty instead of the log barrier.
    HardPenalty,
    /// (3) Zeroth-order gradients in the convex case.
    ZerothOrder,
    /// Full MFCP (smooth max + log barrier + analytic gradients).
    Full,
}

impl AblationVariant {
    /// Display label matching Table 1.
    pub fn label(self) -> &'static str {
        match self {
            AblationVariant::LinearCost => "(1) linear cost",
            AblationVariant::HardPenalty => "(2) hard penalty",
            AblationVariant::ZerothOrder => "(3) zeroth-order",
            AblationVariant::Full => "MFCP",
        }
    }

    /// All four rows of Table 1.
    pub const ALL: [AblationVariant; 4] = [
        AblationVariant::LinearCost,
        AblationVariant::HardPenalty,
        AblationVariant::ZerothOrder,
        AblationVariant::Full,
    ];

    /// Maps the variant onto a setup + gradient mode.
    pub fn configure(self, base: &ExperimentSetup) -> (ExperimentSetup, GradientMode) {
        let mut setup = base.clone();
        let mode = match self {
            AblationVariant::LinearCost => {
                setup.relaxation.cost = CostKind::LinearSum;
                GradientMode::Analytic
            }
            AblationVariant::HardPenalty => {
                setup.relaxation.barrier = BarrierKind::HardPenalty;
                GradientMode::Analytic
            }
            AblationVariant::ZerothOrder => GradientMode::ForwardGradient(base.zeroth_options()),
            AblationVariant::Full => GradientMode::Analytic,
        };
        (setup, mode)
    }
}

/// Runs one ablation variant over seeds. The variant's relaxation is used
/// **both for training and for the deployed matching** — the paper's
/// Table 1 row (1) explicitly simplifies "the time loss function f(·)
/// used for matching", so e.g. the linear-cost variant also *matches*
/// with the linear objective (which is what collapses its utilization).
pub fn run_ablation(
    base: &ExperimentSetup,
    variant: AblationVariant,
    seeds: &[u64],
) -> AggregateScores {
    let (train_setup, mode) = variant.configure(base);
    let per_seed: Vec<MethodScores> = seeds
        .iter()
        .map(|&seed| {
            let (train, test) = base.datasets(seed);
            let m = train.clusters();
            let cfg = train_setup.mfcp_config(m, mode.clone());
            let (pred, _) = train_mfcp(&train, &cfg, seed.wrapping_add(101));
            let opts = train_setup.eval_options(test.clusters());
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(707));
            evaluate_method(&pred, &test, &opts, &mut rng)
        })
        .collect();
    AggregateScores {
        method: variant.label().into(),
        regret: MeanStd::from_values(per_seed.iter().map(|s| s.regret.mean())),
        reliability: MeanStd::from_values(per_seed.iter().map(|s| s.reliability.mean())),
        utilization: MeanStd::from_values(per_seed.iter().map(|s| s.utilization.mean())),
        per_seed_regret: per_seed.iter().map(|s| s.regret.mean()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names() {
        assert_eq!(MethodKind::MfcpAd.name(), "MFCP-AD");
        assert_eq!(MethodKind::ALL.len(), 5);
        assert_eq!(AblationVariant::ALL.len(), 4);
    }

    #[test]
    fn tam_runs_end_to_end_quickly() {
        let setup = ExperimentSetup {
            n_train: 30,
            n_test: 20,
            eval_rounds: 4,
            ..Default::default()
        };
        let scores = setup.run_method_seed(MethodKind::Tam, 1);
        assert_eq!(scores.regret.count(), 4);
        assert!(scores.regret.mean() >= 0.0);
    }

    #[test]
    fn table_formatting() {
        let rows = vec![AggregateScores {
            method: "TAM".into(),
            regret: MeanStd::from_values([1.0, 2.0]),
            reliability: MeanStd::from_values([0.8, 0.9]),
            utilization: MeanStd::from_values([0.5, 0.6]),
            per_seed_regret: vec![1.0, 2.0],
        }];
        let t = format_table("Test", &rows);
        assert!(t.contains("TAM"));
        assert!(t.contains("1.500"));
    }

    #[test]
    fn ablation_configures_relaxation() {
        let base = ExperimentSetup::default();
        let (s, _) = AblationVariant::LinearCost.configure(&base);
        assert_eq!(s.relaxation.cost, CostKind::LinearSum);
        let (s, _) = AblationVariant::HardPenalty.configure(&base);
        assert_eq!(s.relaxation.barrier, BarrierKind::HardPenalty);
        let (s, _) = AblationVariant::Full.configure(&base);
        assert_eq!(s.relaxation.barrier, base.relaxation.barrier);
    }
}
