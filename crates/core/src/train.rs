//! Training pipelines: TSM's supervised baseline and MFCP's end-to-end
//! decision-focused loop (paper Fig. 3 / Algorithm 2).

use crate::methods::{EnsembleUcbPredictor, MfcpPredictor, TsmPredictor, UcbPredictor};
use crate::predictor::ClusterPredictor;
use mfcp_autodiff::Graph;
use mfcp_linalg::Matrix;
use mfcp_nn::{Adam, Loss, Optimizer};
use mfcp_optim::cache::warm_init;
use mfcp_optim::objective;
use mfcp_optim::solver::{solve_relaxed, solve_relaxed_from, SolverOptions};
use mfcp_optim::zeroth::{estimate_gradient, ZerothOrderOptions};
use mfcp_optim::{
    kkt, CacheStats, LearnedDualHead, MatchingProblem, RelaxationParams, RelaxedSolution,
    SpeedupCurve,
};
use mfcp_parallel::{par_map, solve_batch, ParallelConfig};
use mfcp_platform::dataset::PlatformDataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};

/// Configuration for the supervised (MSE) predictor training used by TSM,
/// UCB, and MFCP's warm start.
#[derive(Debug, Clone)]
pub struct TsmTrainConfig {
    /// Hidden layer widths of both predictor networks.
    pub hidden: Vec<usize>,
    /// Training epochs (full passes over the training tasks).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Regression loss for the (log-)time head. Reliability always uses
    /// MSE (its targets are bounded frequencies).
    pub time_loss: Loss,
    /// Thread configuration: clusters train concurrently.
    pub parallel: ParallelConfig,
}

impl Default for TsmTrainConfig {
    fn default() -> Self {
        TsmTrainConfig {
            hidden: vec![32, 32],
            epochs: 300,
            lr: 0.01,
            batch_size: 32,
            time_loss: Loss::Mse,
            parallel: ParallelConfig::default(),
        }
    }
}

/// How MFCP obtains `dX*/dt̂` and `dX*/dâ`.
#[derive(Debug, Clone)]
pub enum GradientMode {
    /// Implicit KKT differentiation (MFCP-AD; convex case only).
    Analytic,
    /// Zeroth-order forward gradients (MFCP-FG; any case).
    ForwardGradient(ZerothOrderOptions),
}

/// Configuration for the end-to-end MFCP training loop.
#[derive(Debug, Clone)]
pub struct MfcpTrainConfig {
    /// Warm-start supervised phase (set `epochs: 0` to disable).
    pub warm_start: TsmTrainConfig,
    /// Number of decision-focused training rounds.
    pub rounds: usize,
    /// Tasks per sampled round (`N`).
    pub round_size: usize,
    /// Adam learning rate for the decision-focused phase.
    pub lr: f64,
    /// Reliability threshold `γ`.
    pub gamma: f64,
    /// Per-cluster speedup curves (empty → sequential execution).
    pub speedup: Vec<SpeedupCurve>,
    /// Relaxation hyper-parameters (β, λ, ρ, barrier, cost).
    pub relaxation: RelaxationParams,
    /// Algorithm 1 solver options.
    pub solver: SolverOptions,
    /// Gradient path: analytic (AD) or forward-gradient (FG).
    pub mode: GradientMode,
    /// Alternate ω/φ updates between rounds (paper §3.3: "we fix ω when
    /// optimizing φ, and fix φ when optimizing ω").
    pub alternating: bool,
    /// L2 cap on each injected decision gradient (per cluster per round).
    /// Near-vertex matchings produce occasional spiky implicit gradients;
    /// clipping keeps Adam from amplifying them into destructive steps.
    pub grad_clip: f64,
    /// Number of fixed validation rounds used for best-snapshot
    /// selection (0 disables validation and returns the final iterate).
    pub validation_rounds: usize,
    /// Validate (and possibly snapshot) every this many training rounds.
    pub validate_every: usize,
    /// Fraction of training tasks held out for validation. With
    /// capacity-limited predictors (which barely memorize), `0.0`
    /// validates on rounds drawn from the training tasks themselves and
    /// lets the warm start see all data; a positive fraction buys an
    /// unbiased validation signal at the cost of warm-start data.
    pub validation_split: f64,
    /// Weight of the MSE anchor blended into every decision update. The
    /// regret gradient only constrains predictions *at decision
    /// boundaries*; off those boundaries the networks are free to drift
    /// arbitrarily far from the measurements, which destroys
    /// generalization. A small pull toward the measured targets keeps the
    /// decision-focused phase on the data manifold (the standard
    /// regret + α·MSE composite loss of the DFL literature).
    pub mse_anchor: f64,
    /// Loss-spike guard: a round whose relaxed regret exceeds
    /// `spike_factor · |recent baseline| + spike_slack` (or is non-finite)
    /// is treated as a destroyed iterate — the predictors and optimizer
    /// states roll back to the last healthy snapshot and the round's
    /// update is skipped. Set to `f64::INFINITY` to disable.
    pub spike_factor: f64,
    /// Absolute slack added to the spike threshold so near-zero baselines
    /// (a well-trained predictor has regret ≈ 0) don't flag ordinary
    /// round-to-round sampling noise.
    pub spike_slack: f64,
    /// Write a checkpoint of all cluster predictors every this many
    /// rounds (0 disables). Requires [`MfcpTrainConfig::checkpoint_dir`].
    pub checkpoint_every: usize,
    /// Directory for periodic checkpoints; also the resume source when
    /// [`MfcpTrainConfig::resume`] is set.
    pub checkpoint_dir: Option<PathBuf>,
    /// Start from the predictors checkpointed in `checkpoint_dir`
    /// (skipping the supervised warm start) when a complete checkpoint is
    /// present; falls back to the normal warm start otherwise.
    pub resume: bool,
    /// Warm-start the round solves from a per-sample [`SolveCache`]:
    /// each solved task's assignment column is cached by global task
    /// index and spliced into the next round that samples the task.
    /// Task-level matching preferences drift slowly with the predictors,
    /// so a resampled task's previous column is an excellent PGD seed.
    /// Poisoned or aged-out cached columns fall back to a cold seed with
    /// a [`RecoveryEvent::StaleWarmStart`] — warm starts can change
    /// solve speed, never validity.
    pub solve_cache: bool,
    /// Train a run-local [`LearnedDualHead`] online from each round's
    /// measured solve: the per-column duals of `sol_true` are exactly
    /// what the learned warm-start path must predict for unseen
    /// siblings of the round's instance. The run-local head is dropped
    /// when training ends — its value is the recorded fit-loss
    /// telemetry and [`RecoveryEvent::BadDualSample`] events; use
    /// [`train_mfcp_with_dual_head`] to keep the trained head for
    /// serving.
    pub learned_duals: bool,
}

impl Default for MfcpTrainConfig {
    fn default() -> Self {
        MfcpTrainConfig {
            warm_start: TsmTrainConfig::default(),
            rounds: 160,
            round_size: 5,
            lr: 1e-3,
            gamma: 0.85,
            speedup: Vec::new(),
            relaxation: RelaxationParams::default(),
            solver: SolverOptions::default(),
            mode: GradientMode::Analytic,
            alternating: true,
            grad_clip: 2.0,
            validation_rounds: 12,
            validate_every: 10,
            validation_split: 0.0,
            mse_anchor: 0.3,
            spike_factor: 3.0,
            spike_slack: 0.02,
            checkpoint_every: 0,
            checkpoint_dir: None,
            resume: false,
            solve_cache: false,
            learned_duals: false,
        }
    }
}

/// Rescales `v` in place so its L2 norm is at most `cap`; returns the
/// resulting norm. Vectors with negligible norm are zeroed (a dead zone:
/// plateau gradients carry no signal worth an optimizer step).
fn clip_l2(v: &mut [f64], cap: f64) -> f64 {
    let norm = mfcp_linalg::vector::norm2(v);
    if norm < 1e-12 {
        for x in v.iter_mut() {
            *x = 0.0;
        }
        return 0.0;
    }
    if norm > cap {
        let s = cap / norm;
        for x in v.iter_mut() {
            *x *= s;
        }
        return cap;
    }
    norm
}

/// True when every entry of every gradient tensor is finite. A single NaN
/// measurement (or an exploded activation) poisons Adam's moment estimates
/// permanently, so non-finite steps are dropped rather than applied.
fn grads_finite(grads: &[Matrix]) -> bool {
    grads
        .iter()
        .all(|g| g.as_slice().iter().all(|v| v.is_finite()))
}

/// Per-cluster decision gradients plus the (round-scaled) predictions
/// they were computed at: `(∂L/∂t̂, ∂L/∂â, t̂, â)`.
type ClusterGradients = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);

/// A recovery action taken by the guarded training loop.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryEvent {
    /// A cluster produced no usable decision gradient this round (singular
    /// KKT system or non-finite zeroth-order estimate) and was skipped.
    SkippedCluster {
        /// Training round (0-based).
        round: usize,
        /// Cluster whose gradient was dropped.
        cluster: usize,
    },
    /// A gradient seed came out non-finite after pullback/clipping; the
    /// affected optimizer step was skipped.
    SkippedGradient {
        /// Training round (0-based).
        round: usize,
        /// Cluster whose step was skipped.
        cluster: usize,
    },
    /// The round loss spiked (or went non-finite); predictors and
    /// optimizer states were rolled back to the last healthy snapshot.
    Rollback {
        /// Training round (0-based).
        round: usize,
        /// The offending loss value (may be NaN/∞).
        loss: f64,
        /// The recent-loss baseline the spike was measured against.
        baseline: f64,
    },
    /// A periodic checkpoint was written to disk.
    Checkpoint {
        /// Training round (0-based) after which the checkpoint was taken.
        round: usize,
    },
    /// Training resumed from an on-disk checkpoint instead of the
    /// supervised warm start.
    Resumed,
    /// A cached warm-start state was poisoned (non-finite entries) or no
    /// longer matched the round's problem shape; the affected solve ran
    /// cold instead and the stale state was evicted.
    StaleWarmStart {
        /// Training round (0-based).
        round: usize,
        /// The cluster whose spliced-problem warm start went stale, or
        /// `None` when a shared (all-predicted / all-measured) round
        /// solve's cache entry did.
        cluster: Option<usize>,
    },
    /// A round's measured optimum was rejected as a dual-head training
    /// sample (shape mismatch, non-finite entries, or out-of-scale
    /// duals); the head's weights were left untouched for the round.
    BadDualSample {
        /// Training round (0-based).
        round: usize,
    },
}

impl std::fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryEvent::SkippedCluster { round, cluster } => {
                write!(
                    f,
                    "round {round}: cluster {cluster} gradient unavailable, skipped"
                )
            }
            RecoveryEvent::SkippedGradient { round, cluster } => {
                write!(
                    f,
                    "round {round}: cluster {cluster} non-finite seed, step skipped"
                )
            }
            RecoveryEvent::Rollback {
                round,
                loss,
                baseline,
            } => {
                write!(
                    f,
                    "round {round}: loss {loss:.4} spiked past baseline {baseline:.4}, rolled back"
                )
            }
            RecoveryEvent::Checkpoint { round } => write!(f, "round {round}: checkpoint written"),
            RecoveryEvent::Resumed => write!(f, "resumed from checkpoint"),
            RecoveryEvent::StaleWarmStart { round, cluster } => match cluster {
                Some(i) => write!(
                    f,
                    "round {round}: cluster {i} warm-start state stale, solved cold"
                ),
                None => write!(
                    f,
                    "round {round}: shared-solve warm-start entry stale, solved cold"
                ),
            },
            RecoveryEvent::BadDualSample { round } => write!(
                f,
                "round {round}: measured optimum rejected as dual-head sample, head untouched"
            ),
        }
    }
}

/// Diagnostics from an MFCP training run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Relaxed regret loss (Eq. 12's upper level) per round. Rounds that
    /// triggered a rollback record the observed (spiked) value.
    pub loss_history: Vec<f64>,
    /// Validation (discrete regret) at each validation checkpoint.
    pub validation_history: Vec<f64>,
    /// The round whose snapshot was ultimately returned.
    pub best_round: usize,
    /// Recovery actions, in the order they happened.
    pub recovery: Vec<RecoveryEvent>,
}

impl TrainReport {
    /// Number of loss-spike rollbacks that occurred during training.
    pub fn rollbacks(&self) -> usize {
        self.recovery
            .iter()
            .filter(|e| matches!(e, RecoveryEvent::Rollback { .. }))
            .count()
    }

    /// Rounds (0-based) whose updates were rolled back.
    pub fn rolled_back_rounds(&self) -> Vec<usize> {
        self.recovery
            .iter()
            .filter_map(|e| match e {
                RecoveryEvent::Rollback { round, .. } => Some(*round),
                _ => None,
            })
            .collect()
    }
}

/// Writes every cluster predictor to `<dir>/cluster_<i>.mfcp` (creating
/// `dir` if needed). Each per-cluster file is written atomically
/// (temp-file + fsync + rename via [`mfcp_nn::persist::atomic_write`]),
/// so a crash mid-save never corrupts an existing file; the write is
/// still not atomic *across* clusters, and resume validates completeness
/// before using any of it.
pub fn write_checkpoint(dir: &Path, predictors: &[ClusterPredictor]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (i, p) in predictors.iter().enumerate() {
        mfcp_nn::persist::atomic_write(dir.join(format!("cluster_{i}.mfcp")), &p.to_document())
            .map_err(|e| match e {
                mfcp_nn::persist::PersistError::Io(io) => io,
                other => std::io::Error::other(other.to_string()),
            })?;
    }
    Ok(())
}

/// Loads a complete `clusters`-wide checkpoint written by
/// [`write_checkpoint`]; any missing or corrupt file fails the whole load.
pub fn load_checkpoint(
    dir: &Path,
    clusters: usize,
) -> Result<Vec<ClusterPredictor>, Box<dyn std::error::Error>> {
    let mut predictors = Vec::with_capacity(clusters);
    for i in 0..clusters {
        let text = std::fs::read_to_string(dir.join(format!("cluster_{i}.mfcp")))?;
        predictors.push(ClusterPredictor::from_document(&text)?);
    }
    Ok(predictors)
}

/// Discrete-regret validation: match each validation round with the
/// current predictors and compare makespans against the exact optimum on
/// the *measured* matrices.
fn validation_regret(
    predictors: &[ClusterPredictor],
    train: &PlatformDataset,
    times_scaled: &Matrix,
    val_rounds: &[Vec<usize>],
    cfg: &MfcpTrainConfig,
    speedup: &[SpeedupCurve],
) -> f64 {
    use mfcp_optim::exact::{solve_exact, ExactOptions};
    use mfcp_optim::rounding::solve_discrete;
    let m = train.clusters();
    let mut total = 0.0;
    for idx in val_rounds {
        let n = idx.len();
        let features =
            Matrix::from_fn(n, train.features.cols(), |r, c| train.features[(idx[r], c)]);
        let t_meas = Matrix::from_fn(m, n, |i, j| times_scaled[(i, idx[j])]);
        let a_meas = Matrix::from_fn(m, n, |i, j| train.reliability[(i, idx[j])]);
        let problem_true =
            MatchingProblem::with_speedup(t_meas, a_meas, cfg.gamma, speedup.to_vec());
        let (t_hat, a_hat) = predicted_matrices(predictors, &features);
        let scale = t_hat.mean().max(1e-9);
        let problem_pred = MatchingProblem::with_speedup(
            t_hat.scale(1.0 / scale),
            a_hat,
            cfg.gamma,
            speedup.to_vec(),
        );
        let assignment = solve_discrete(&problem_pred, &cfg.relaxation, &cfg.solver);
        let optimal = solve_exact(&problem_true, &ExactOptions::default());
        total += (assignment.makespan(&problem_true) - optimal.assignment.makespan(&problem_true))
            .max(0.0);
    }
    total / val_rounds.len().max(1) as f64
}

/// Trains one cluster's predictor pair by MSE. Time targets are given in
/// *scaled* units and regressed in log space (the time head predicts
/// `log t`).
fn train_cluster_supervised(
    features: &Matrix,
    times_scaled: &Matrix,
    reliability: &Matrix,
    cfg: &TsmTrainConfig,
    seed: u64,
) -> ClusterPredictor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut predictor = ClusterPredictor::new(features.cols(), &cfg.hidden, &mut rng);
    let mut opt_t = Adam::new(cfg.lr);
    let mut opt_a = Adam::new(cfg.lr);
    let n = features.rows();
    let mut order: Vec<usize> = (0..n).collect();
    let epoch_counter = mfcp_obs::counter("train.supervised.epochs");
    for _ in 0..cfg.epochs {
        epoch_counter.inc();
        mfcp_nn::data::shuffle(&mut order, &mut rng);
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let xb = Matrix::from_fn(chunk.len(), features.cols(), |r, c| features[(chunk[r], c)]);
            let tb = Matrix::from_fn(chunk.len(), 1, |r, _| {
                times_scaled[(chunk[r], 0)].max(1e-9).ln()
            });
            let ab = Matrix::from_fn(chunk.len(), 1, |r, _| reliability[(chunk[r], 0)]);

            let mut g = Graph::new();
            let xi = g.input(xb.clone());
            let pass = predictor.time_model.forward(&mut g, xi);
            let ti = g.input(tb);
            let loss = cfg.time_loss.build(&mut g, pass.output, ti);
            g.backward(loss);
            let grads = predictor.time_model.grads(&g, &pass);
            if grads_finite(&grads) {
                let mut params = predictor.time_model.params_mut();
                opt_t.step(&mut params, &grads);
            }

            let mut g = Graph::new();
            let xi = g.input(xb);
            let pass = predictor.rel_model.forward(&mut g, xi);
            let ai = g.input(ab);
            let loss = g.mse(pass.output, ai);
            g.backward(loss);
            let grads = predictor.rel_model.grads(&g, &pass);
            if grads_finite(&grads) {
                let mut params = predictor.rel_model.params_mut();
                opt_a.step(&mut params, &grads);
            }
        }
    }
    predictor
}

/// Trains the TSM baseline: per-cluster MSE predictors (clusters train in
/// parallel).
pub fn train_tsm(train: &PlatformDataset, cfg: &TsmTrainConfig, seed: u64) -> TsmPredictor {
    let m = train.clusters();
    let time_scale = train.times.mean().max(1e-9);
    let cluster_ids: Vec<usize> = (0..m).collect();
    let predictors = par_map(&cfg.parallel, &cluster_ids, |&i| {
        let data = train.cluster_data(i);
        let times_scaled = data.times.scale(1.0 / time_scale);
        train_cluster_supervised(
            &data.features,
            &times_scaled,
            &data.reliability,
            cfg,
            seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15),
        )
    });
    TsmPredictor {
        predictors,
        time_scale,
    }
}

/// Trains the ensemble UCB extension: `members` independently seeded TSM
/// fits wrapped in [`EnsembleUcbPredictor`].
pub fn train_ensemble_ucb(
    train: &PlatformDataset,
    cfg: &TsmTrainConfig,
    members: usize,
    kappa: f64,
    seed: u64,
) -> EnsembleUcbPredictor {
    assert!(members >= 1);
    let fits: Vec<TsmPredictor> = (0..members)
        .map(|e| train_tsm(train, cfg, seed.wrapping_add(1000 + e as u64)))
        .collect();
    EnsembleUcbPredictor::new(fits, kappa)
}

/// Trains the UCB baseline: TSM plus residual confidence widths.
pub fn train_ucb(
    train: &PlatformDataset,
    cfg: &TsmTrainConfig,
    kappa: f64,
    seed: u64,
) -> UcbPredictor {
    let tsm = train_tsm(train, cfg, seed);
    UcbPredictor::from_tsm(tsm, train, kappa)
}

/// Builds the per-cluster speedup vector for `m` clusters from a config
/// (empty config ⇒ sequential execution).
fn speedup_vec(cfg: &MfcpTrainConfig, m: usize) -> Vec<SpeedupCurve> {
    if cfg.speedup.is_empty() {
        vec![SpeedupCurve::None; m]
    } else {
        assert_eq!(cfg.speedup.len(), m, "one speedup curve per cluster");
        cfg.speedup.clone()
    }
}

/// Rounds a stored per-task column survives without being refreshed;
/// beyond this it is dropped as stale (the predictors have drifted too
/// far for the old assignment to be a useful seed).
const TASK_COLUMN_MAX_AGE: usize = 8;

/// True when `col` is a valid simplex column of height `m`.
fn valid_column(col: &[f64], m: usize) -> bool {
    col.len() == m
        && col.iter().all(|v| v.is_finite() && *v >= -1e-9)
        && (col.iter().sum::<f64>() - 1.0).abs() <= 1e-6
}

/// Per-task (per-sample) warm-start columns for one family of round
/// solves. Rounds resample task subsets, so whole solution matrices do
/// not transfer between rounds — but a task's *column* (its assignment
/// distribution) does: it is keyed here by global task index and spliced
/// into the next round that samples the task.
#[derive(Debug, Clone, Default)]
pub struct TaskColumns {
    /// `task index -> (round the column was stored at, column)`.
    cols: HashMap<usize, (usize, Vec<f64>)>,
}

/// What building a warm seed from [`TaskColumns`] found.
struct SeedOutcome {
    /// The seed (uniform columns for unseen tasks), or `None` when no
    /// sampled task had a usable cached column.
    x0: Option<Matrix>,
    /// Sampled tasks with a valid cached column.
    hits: u64,
    /// Sampled tasks never seen (or aged out) by this family.
    misses: u64,
    /// Cached columns evicted as poisoned or past the staleness bound.
    stale: u64,
}

impl TaskColumns {
    /// Number of tasks with a cached column.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when no column is cached.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Inserts a raw column for `task` (stamped at round 0). Validation
    /// happens at seed time, so poisoned state injected here is detected
    /// and evicted on the next lookup — used by tests and by callers
    /// migrating state between cache instances.
    pub fn insert(&mut self, task: usize, column: Vec<f64>) {
        self.cols.insert(task, (0, column));
    }

    /// Builds a warm-start seed for the sampled tasks `idx` on `m`
    /// clusters, evicting any stale or poisoned columns encountered.
    ///
    /// `fallback` is a same-round solution of a nearby problem over the
    /// *same* task subset (e.g. the all-measured optimum when seeding a
    /// cluster's one-row-spliced solve): columns the cache cannot supply
    /// are taken from it instead of the uniform point, so the seed has
    /// full coverage even on the first round. Fallback columns are not
    /// counted as cache hits — the miss still records that the task's
    /// own column was absent.
    fn seed(
        &mut self,
        idx: &[usize],
        m: usize,
        round: usize,
        fallback: Option<&Matrix>,
    ) -> SeedOutcome {
        let uniform = 1.0 / m as f64;
        let fallback = fallback.filter(|f| f.rows() == m && f.cols() == idx.len());
        let mut x0 = Matrix::filled(m, idx.len(), uniform);
        let (mut hits, mut misses, mut stale) = (0u64, 0u64, 0u64);
        for (j, &task) in idx.iter().enumerate() {
            let cached = match self.cols.get(&task) {
                None => {
                    misses += 1;
                    false
                }
                Some((stored_at, col)) => {
                    if round.saturating_sub(*stored_at) > TASK_COLUMN_MAX_AGE
                        || !valid_column(col, m)
                    {
                        self.cols.remove(&task);
                        stale += 1;
                        false
                    } else {
                        for (i, &v) in col.iter().enumerate() {
                            x0[(i, j)] = v.max(0.0);
                        }
                        hits += 1;
                        true
                    }
                }
            };
            if !cached {
                if let Some(f) = fallback {
                    for i in 0..m {
                        x0[(i, j)] = f[(i, j)].max(0.0);
                    }
                }
            }
        }
        SeedOutcome {
            x0: (hits > 0 || fallback.is_some()).then_some(x0),
            hits,
            misses,
            stale,
        }
    }

    /// Stores the solved columns of `x` under the sampled task indices.
    fn store(&mut self, idx: &[usize], x: &Matrix, round: usize) {
        if x.rows() == 0 || x.cols() != idx.len() {
            return;
        }
        for (j, &task) in idx.iter().enumerate() {
            let col = x.col(j);
            if valid_column(&col, x.rows()) {
                self.cols.insert(task, (round, col));
            }
        }
    }
}

/// Cross-round (and cross-run) warm-start state for [`train_mfcp`]: one
/// [`TaskColumns`] family per distinct round-solve problem shape — the
/// shared all-predicted and all-measured solves plus each cluster's
/// spliced problem. Every cached column is re-validated before use; a
/// poisoned one triggers a cold seed plus a
/// [`RecoveryEvent::StaleWarmStart`], never a panic or a wrong answer.
#[derive(Debug, Clone, Default)]
pub struct SolveCache {
    /// Columns for the all-predicted shared solve.
    pub pred: TaskColumns,
    /// Columns for the all-measured shared solve.
    pub meas: TaskColumns,
    /// Columns for each cluster's spliced-prediction solve.
    pub clusters: Vec<TaskColumns>,
    /// Aggregate hit/miss/stale accounting across all families.
    pub stats: CacheStats,
}

impl SolveCache {
    /// An empty cache; fills lazily as training rounds complete.
    pub fn new() -> Self {
        SolveCache::default()
    }
}

/// Folds a [`SeedOutcome`]'s accounting into the cache stats and the
/// `cache.*` observability counters.
fn record_seed(outcome: &SeedOutcome, stats: &mut CacheStats) {
    stats.hits += outcome.hits;
    stats.misses += outcome.misses;
    stats.stale += outcome.stale;
    if outcome.hits > 0 {
        mfcp_obs::counter("cache.hit").add(outcome.hits);
    }
    if outcome.misses > 0 {
        mfcp_obs::counter("cache.miss").add(outcome.misses);
    }
    if outcome.stale > 0 {
        mfcp_obs::counter("cache.stale").add(outcome.stale);
        mfcp_obs::trace::instant("train.warm_stale", Some(outcome.stale));
    }
}

/// Solves one shared round problem through its [`TaskColumns`] family:
/// seeds Algorithm 1 from the cached per-task columns when any are
/// available, then stores the solved columns back. Returns the solution
/// and whether any cached column went stale (caller reports the event).
fn solve_family_warm(
    problem: &MatchingProblem,
    cfg: &MfcpTrainConfig,
    idx: &[usize],
    round: usize,
    family: &mut TaskColumns,
    stats: &mut CacheStats,
    fallback: Option<&Matrix>,
) -> (RelaxedSolution, bool) {
    let outcome = family.seed(idx, problem.clusters(), round, fallback);
    record_seed(&outcome, stats);
    let sol = match &outcome.x0 {
        Some(x0) => solve_relaxed_from(problem, &cfg.relaxation, &cfg.solver, warm_init(x0)),
        None => solve_relaxed(problem, &cfg.relaxation, &cfg.solver),
    };
    family.store(idx, &sol.x, round);
    (sol, outcome.stale > 0)
}

/// The end-to-end MFCP training loop (paper Fig. 3 / Algorithm 2).
///
/// Each round samples `N = round_size` tasks, and for each cluster `i`
/// splices that cluster's *predictions* into the otherwise-measured
/// matrices (Algorithm 2 line 3), solves the relaxed matching, forms the
/// regret gradient `∂L/∂X* = (1/N)·∇_X F(X, T, A)` under the measured
/// matrices, pulls it back to `∂L/∂t̂_i`, `∂L/∂â_i` through the matching
/// layer (analytically or by forward gradients), and finally
/// backpropagates into the predictor parameters.
///
/// With [`MfcpTrainConfig::solve_cache`] set, round solves warm-start
/// from a run-local [`SolveCache`]; use [`train_mfcp_with_cache`] to
/// carry that state across calls.
pub fn train_mfcp(
    train: &PlatformDataset,
    cfg: &MfcpTrainConfig,
    seed: u64,
) -> (MfcpPredictor, TrainReport) {
    if cfg.solve_cache {
        let mut cache = SolveCache::new();
        train_mfcp_impl(train, cfg, seed, Some(&mut cache), None)
    } else {
        train_mfcp_impl(train, cfg, seed, None, None)
    }
}

/// [`train_mfcp`] with caller-owned warm-start state, used regardless of
/// [`MfcpTrainConfig::solve_cache`]. Successive re-trainings on a live
/// platform (same cluster set, fresh measurements) can pass the same
/// `cache` so the first rounds of the next run already warm-start.
pub fn train_mfcp_with_cache(
    train: &PlatformDataset,
    cfg: &MfcpTrainConfig,
    seed: u64,
    cache: &mut SolveCache,
) -> (MfcpPredictor, TrainReport) {
    train_mfcp_impl(train, cfg, seed, Some(cache), None)
}

/// [`train_mfcp`] with a caller-owned [`LearnedDualHead`], trained
/// online from the duals of each round's measured solve (regardless of
/// [`MfcpTrainConfig::learned_duals`]). The head must be sized for the
/// dataset's cluster count. Successive re-trainings can pass the same
/// head so it keeps refining on fresh measurements; hand the trained
/// head to the serve daemon to seed newcomer columns on unseen
/// instances.
pub fn train_mfcp_with_dual_head(
    train: &PlatformDataset,
    cfg: &MfcpTrainConfig,
    seed: u64,
    head: &mut LearnedDualHead,
) -> (MfcpPredictor, TrainReport) {
    if cfg.solve_cache {
        let mut cache = SolveCache::new();
        train_mfcp_impl(train, cfg, seed, Some(&mut cache), Some(head))
    } else {
        train_mfcp_impl(train, cfg, seed, None, Some(head))
    }
}

fn train_mfcp_impl(
    train: &PlatformDataset,
    cfg: &MfcpTrainConfig,
    seed: u64,
    mut cache: Option<&mut SolveCache>,
    head: Option<&mut LearnedDualHead>,
) -> (MfcpPredictor, TrainReport) {
    let _span = mfcp_obs::span("train_mfcp");
    let m = train.clusters();
    assert!(
        train.len() >= cfg.round_size,
        "need at least one full round of tasks"
    );
    let mut local_head = if head.is_none() && cfg.learned_duals {
        Some(LearnedDualHead::new(m, seed.wrapping_add(0xD0A1)))
    } else {
        None
    };
    let mut head = head.or(local_head.as_mut());
    let speedup = speedup_vec(cfg, m);
    if let Some(c) = cache.as_deref_mut() {
        c.clusters.resize(m, TaskColumns::default());
    }

    // Hold out a validation slice for best-snapshot selection. Validating
    // on the fitting tasks is useless: the warm start memorizes their
    // measured values and can never be beaten there, while the decision
    // phase's gains only show on unseen tasks.
    let mut val_rng = StdRng::seed_from_u64(seed.wrapping_add(0x7A11));
    let use_validation = cfg.validation_rounds > 0;
    let use_split =
        use_validation && cfg.validation_split > 0.0 && train.len() >= 2 * cfg.round_size.max(4);
    let (fit, val) = if use_split {
        train.split(1.0 - cfg.validation_split, &mut val_rng)
    } else {
        (train.clone(), train.clone())
    };
    let fit = &fit;

    let mut report = TrainReport::default();

    // Phase 1: supervised warm start (standard DFL practice — start the
    // decision-focused phase from sensible point predictions), unless a
    // complete checkpoint is available to resume from. The time scale is
    // a dataset statistic, not a model parameter, so a resumed run
    // recomputes the same value the checkpointed run used.
    let resumed: Option<Vec<ClusterPredictor>> = if cfg.resume {
        cfg.checkpoint_dir
            .as_deref()
            .and_then(|dir| load_checkpoint(dir, m).ok())
    } else {
        None
    };
    let (time_scale, mut predictors) = match resumed {
        Some(predictors) => {
            report.recovery.push(RecoveryEvent::Resumed);
            (fit.times.mean().max(1e-9), predictors)
        }
        None => {
            let _warm_span = mfcp_obs::span("warm_start");
            let warm = train_tsm(fit, &cfg.warm_start, seed);
            (warm.time_scale, warm.predictors)
        }
    };

    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0xDF));
    let mut opt_t: Vec<Adam> = (0..m).map(|_| Adam::new(cfg.lr)).collect();
    let mut opt_a: Vec<Adam> = (0..m).map(|_| Adam::new(cfg.lr)).collect();

    // All matching happens in scaled time units so β, λ, ρ are
    // well-conditioned regardless of the platform's absolute time scale.
    let times_scaled = fit.times.scale(1.0 / time_scale);
    let val_times_scaled = val.times.scale(1.0 / time_scale);

    // Fixed validation rounds: decision gradients are noisy (sampled
    // rounds, near-vertex solutions), so the final iterate is not
    // necessarily the best one.
    let val_rounds: Vec<Vec<usize>> = if use_validation {
        (0..cfg.validation_rounds)
            .map(|_| sample_round_indices(val.len(), cfg.round_size.min(val.len()), &mut val_rng))
            .collect()
    } else {
        Vec::new()
    };
    let mut best_score = if val_rounds.is_empty() {
        f64::INFINITY
    } else {
        let _val_span = mfcp_obs::span("validation");
        validation_regret(
            &predictors,
            &val,
            &val_times_scaled,
            &val_rounds,
            cfg,
            &speedup,
        )
    };
    let mut best_predictors = predictors.clone();
    let mut best_round = 0usize;
    report.validation_history.push(best_score);

    // Loss-spike guard state: a sliding window of recently accepted
    // losses forms the baseline, and `last_good` holds the newest
    // predictor + optimizer snapshot whose loss cleared the guard.
    // Optimizer states roll back together with the parameters — restoring
    // weights under stale Adam momentum would immediately replay the
    // destructive step.
    let spike_window = 8usize;
    let mut recent_losses: VecDeque<f64> = VecDeque::with_capacity(spike_window);
    let mut last_good = (predictors.clone(), opt_t.clone(), opt_a.clone());

    for round in 0..cfg.rounds {
        let _round_span = mfcp_obs::span("round");
        mfcp_obs::counter("train.rounds").inc();
        // ---- sample a round of N tasks --------------------------------
        let mut idx: Vec<usize> = (0..fit.len()).collect();
        mfcp_nn::data::shuffle(&mut idx, &mut rng);
        idx.truncate(cfg.round_size);
        let n = idx.len();
        let features = Matrix::from_fn(n, fit.features.cols(), |r, c| fit.features[(idx[r], c)]);
        // Per-round normalization: divide this round's times (measured
        // and predicted alike) by the round's mean measured time, so the
        // smooth-max temperature β sees O(1) values regardless of which
        // tasks were drawn. The normalizer depends only on measured data,
        // so it is a constant w.r.t. the predictor parameters.
        let data_ok = idx.iter().all(|&j| {
            (0..m).all(|i| {
                let t = times_scaled[(i, j)];
                let a = fit.reliability[(i, j)];
                t.is_finite() && t >= 0.0 && a.is_finite()
            })
        });
        // Corrupt measurements (a NaN probe, a wrapped timer) would trip
        // the matching layer's input asserts, so a poisoned round gets
        // bland finite stand-ins here and is rejected by the spike guard
        // below via a NaN loss — no update ever sees the bad data.
        let t_meas_raw = Matrix::from_fn(m, n, |i, j| {
            let v = times_scaled[(i, idx[j])];
            if v.is_finite() && v >= 0.0 {
                v
            } else {
                1.0
            }
        });
        let round_scale = t_meas_raw.mean().max(1e-9);
        let t_meas = t_meas_raw.scale(1.0 / round_scale);
        let a_meas = Matrix::from_fn(m, n, |i, j| {
            let v = fit.reliability[(i, idx[j])];
            if v.is_finite() {
                v.clamp(0.0, 1.0)
            } else {
                0.5
            }
        });
        let problem_true = MatchingProblem::with_speedup(
            t_meas.clone(),
            a_meas.clone(),
            cfg.gamma,
            speedup.clone(),
        );

        // ---- loss bookkeeping (all-clusters-predicted regret) ----------
        let (t_all, a_all) = predicted_matrices(&predictors, &features);
        let problem_all = MatchingProblem::with_speedup(
            t_all.scale(1.0 / round_scale),
            a_all,
            cfg.gamma,
            speedup.clone(),
        );
        let (sol_pred_all, sol_true) = if let Some(c) = cache.as_deref_mut() {
            // Measured solve first: its optimum backstops the per-cluster
            // seeds below (those problems differ from it in one row). The
            // all-predicted solve gets no fallback — early in training the
            // predicted matrices sit far from the measured ones, so the
            // measured optimum is a worse seed than uniform there; its own
            // family's cached columns cover it from the second round on.
            let (sol_true, stale_meas) = solve_family_warm(
                &problem_true,
                cfg,
                &idx,
                round,
                &mut c.meas,
                &mut c.stats,
                None,
            );
            let (sol_pred_all, stale_pred) = solve_family_warm(
                &problem_all,
                cfg,
                &idx,
                round,
                &mut c.pred,
                &mut c.stats,
                None,
            );
            if stale_pred || stale_meas {
                report.recovery.push(RecoveryEvent::StaleWarmStart {
                    round,
                    cluster: None,
                });
            }
            (sol_pred_all, sol_true)
        } else {
            (
                solve_relaxed(&problem_all, &cfg.relaxation, &cfg.solver),
                solve_relaxed(&problem_true, &cfg.relaxation, &cfg.solver),
            )
        };

        // ---- online dual-head training ---------------------------------
        // The measured optimum is ground truth for the learned-duals
        // warm-start path: its per-column duals are exactly what the head
        // must predict for unseen siblings of this round's instance.
        // `observe` rejects poisoned samples without touching the weights.
        if let Some(h) = head.as_deref_mut() {
            if h.observe(&problem_true, &cfg.relaxation, &sol_true.x)
                .is_none()
            {
                report.recovery.push(RecoveryEvent::BadDualSample { round });
            }
        }

        let loss = if data_ok {
            (objective::value(&problem_true, &cfg.relaxation, &sol_pred_all.x)
                - objective::value(&problem_true, &cfg.relaxation, &sol_true.x))
                / n as f64
        } else {
            f64::NAN
        };
        report.loss_history.push(loss);
        mfcp_obs::histogram("train.round.loss").record(loss);

        // ---- loss-spike guard ------------------------------------------
        // The loss is computed *before* this round's update, so a spike
        // indicts an earlier accepted step: restore the last snapshot
        // whose loss cleared the guard and sit this round out.
        let baseline = if recent_losses.is_empty() {
            f64::INFINITY
        } else {
            recent_losses.iter().sum::<f64>() / recent_losses.len() as f64
        };
        let spiked = !loss.is_finite()
            || (recent_losses.len() >= 3
                && loss > cfg.spike_factor * baseline.abs() + cfg.spike_slack);
        if spiked {
            mfcp_obs::counter("train.rollbacks").inc();
            mfcp_obs::trace::instant("train.rollback", Some(round as u64));
            report.recovery.push(RecoveryEvent::Rollback {
                round,
                loss,
                baseline,
            });
            predictors = last_good.0.clone();
            opt_t = last_good.1.clone();
            opt_a = last_good.2.clone();
        } else {
            if recent_losses.len() == spike_window {
                recent_losses.pop_front();
            }
            recent_losses.push_back(loss);
            last_good = (predictors.clone(), opt_t.clone(), opt_a.clone());
        }

        let update_time = !spiked && (!cfg.alternating || round % 2 == 0);
        let update_rel = !spiked && (!cfg.alternating || round % 2 == 1);

        // ---- per-cluster decision gradients (parallel) ------------------
        // Each cluster's matching solve and gradient pullback is
        // independent of the others (Algorithm 2 fixes all other rows at
        // measured values), so the expensive part fans out across batch
        // slots (panic-isolated: a poisoned slot becomes a SkippedCluster,
        // not a dead round); the optimizer steps below stay sequential.
        //
        // Build per-cluster warm seeds from each cluster family's cached
        // task columns, evicting any state that no longer validates.
        // Each cluster's spliced problem differs from `problem_true` in a
        // single row, so the measured optimum backstops any column the
        // cluster family cannot supply — full-coverage seeds from round
        // one onward.
        let use_cache = cache.is_some();
        let mut cluster_warm: Vec<Option<Matrix>> = vec![None; m];
        if !spiked {
            if let Some(c) = cache.as_deref_mut() {
                for (i, slot) in cluster_warm.iter_mut().enumerate() {
                    let outcome = c.clusters[i].seed(&idx, m, round, Some(&sol_true.x));
                    record_seed(&outcome, &mut c.stats);
                    *slot = outcome.x0;
                    if outcome.stale > 0 {
                        report.recovery.push(RecoveryEvent::StaleWarmStart {
                            round,
                            cluster: Some(i),
                        });
                    }
                }
            }
        }
        let cluster_seeds: Vec<(usize, u64)> = (0..m).map(|i| (i, rng.gen::<u64>())).collect();
        let batch_out = if spiked {
            Vec::new() // rolled back: no updates this round
        } else {
            solve_batch(
                &ParallelConfig::default(),
                &cluster_seeds,
                |_, &(i, fg_seed)| {
                    let t_hat: Vec<f64> = predictors[i]
                        .predict_times(&features)
                        .into_iter()
                        .map(|v| v / round_scale)
                        .collect();
                    let a_hat: Vec<f64> = predictors[i]
                        .predict_reliability(&features)
                        .into_iter()
                        .map(|v| v.clamp(0.0, 1.0))
                        .collect();
                    let problem_pred = problem_true
                        .with_time_row(i, &t_hat)
                        .with_reliability_row(i, &a_hat);
                    let sol = match &cluster_warm[i] {
                        Some(x0) => solve_relaxed_from(
                            &problem_pred,
                            &cfg.relaxation,
                            &cfg.solver,
                            warm_init(x0),
                        ),
                        None => solve_relaxed(&problem_pred, &cfg.relaxation, &cfg.solver),
                    };
                    // Hand the optimum back even when the gradient below
                    // fails — it still seeds next round's solve (store
                    // validates column by column).
                    let keep_x = use_cache.then(|| sol.x.clone());

                    // ∂L/∂X* = (1/N)·∇_X F(X, T_meas, A_meas) at X = X*(T̂, Â).
                    let dl_dx = objective::grad_x(&problem_true, &cfg.relaxation, &sol.x)
                        .scale(1.0 / n as f64);

                    let grads = match &cfg.mode {
                        GradientMode::Analytic => {
                            // One KKT workspace per worker thread keeps the
                            // backward pass allocation-free across rounds
                            // without sharing mutable state between the
                            // batch closures.
                            thread_local! {
                                static KKT_WS: std::cell::RefCell<kkt::KktWorkspace> =
                                    std::cell::RefCell::new(kkt::KktWorkspace::new());
                            }
                            // A singular KKT system (a fully collapsed vertex
                            // solution) carries no usable gradient — skip the
                            // round for this cluster rather than aborting.
                            match KKT_WS.with(|ws| {
                                kkt::implicit_gradients_with(
                                    &problem_pred,
                                    &cfg.relaxation,
                                    &sol.x,
                                    &dl_dx,
                                    &mut ws.borrow_mut(),
                                )
                            }) {
                                Ok(g) => (g.dl_dt.row(i).to_vec(), g.dl_da.row(i).to_vec()),
                                Err(_) => return (None, keep_x),
                            }
                        }
                        GradientMode::ForwardGradient(zo) => {
                            let mut fg_rng = StdRng::seed_from_u64(fg_seed);
                            let solve_t = |theta: &[f64]| {
                                let p = problem_pred.with_time_row(
                                    i,
                                    &theta.iter().map(|&v| v.max(1e-6)).collect::<Vec<_>>(),
                                );
                                // Perturbed problems sit within O(δ) of the
                                // unperturbed optimum — share it as a common
                                // warm start across all S perturbation solves.
                                if use_cache {
                                    solve_relaxed_from(
                                        &p,
                                        &cfg.relaxation,
                                        &cfg.solver,
                                        warm_init(&sol.x),
                                    )
                                    .x
                                } else {
                                    solve_relaxed(&p, &cfg.relaxation, &cfg.solver).x
                                }
                            };
                            let solve_a = |theta: &[f64]| {
                                let p = problem_pred.with_reliability_row(i, theta);
                                if use_cache {
                                    solve_relaxed_from(
                                        &p,
                                        &cfg.relaxation,
                                        &cfg.solver,
                                        warm_init(&sol.x),
                                    )
                                    .x
                                } else {
                                    solve_relaxed(&p, &cfg.relaxation, &cfg.solver).x
                                }
                            };
                            // estimate_gradient runs the S perturbation
                            // solves under the caller's `zo.parallel`
                            // directly: the probe directions are pre-drawn
                            // sequentially and the summation order is fixed,
                            // so the estimate is bitwise identical at any
                            // thread count.
                            let gt = if update_time {
                                estimate_gradient(&t_hat, &sol.x, &dl_dx, solve_t, zo, &mut fg_rng)
                            } else {
                                vec![0.0; n]
                            };
                            let ga = if update_rel {
                                estimate_gradient(&a_hat, &sol.x, &dl_dx, solve_a, zo, &mut fg_rng)
                            } else {
                                vec![0.0; n]
                            };
                            (gt, ga)
                        }
                    };
                    (Some((grads.0, grads.1, t_hat, a_hat)), keep_x)
                },
            )
        };
        // Unpack in slot order: refresh the per-cluster warm state and
        // fold panicked slots into the existing skipped-cluster path.
        let mut cluster_grads: Vec<Option<ClusterGradients>> = Vec::with_capacity(batch_out.len());
        for (i, slot) in batch_out.into_iter().enumerate() {
            match slot {
                Ok((grad, new_x)) => {
                    if let Some(c) = cache.as_deref_mut() {
                        if let Some(x) = new_x {
                            c.clusters[i].store(&idx, &x, round);
                        }
                    }
                    cluster_grads.push(grad);
                }
                Err(_slot_panic) => cluster_grads.push(None),
            }
        }

        // ---- sequential optimizer steps ---------------------------------
        for (i, cluster_grad) in cluster_grads.into_iter().enumerate() {
            let Some((dl_dt_i, dl_da_i, t_hat, a_hat)) = cluster_grad else {
                mfcp_obs::counter("train.skipped_clusters").inc();
                report
                    .recovery
                    .push(RecoveryEvent::SkippedCluster { round, cluster: i });
                continue;
            };

            if update_time {
                // Chain through the exponential head: out = log t̂, so
                // ∂L/∂out = ∂L/∂t̂ · t̂ (units cancel: t_hat is already in
                // round-scaled units, matching dl_dt_i). Blend in the MSE
                // anchor in log space: ∂/∂out mean((out − log t_meas)²).
                let mut seed: Vec<f64> = (0..n).map(|r| dl_dt_i[r] * t_hat[r]).collect();
                let clipped = clip_l2(&mut seed, cfg.grad_clip);
                mfcp_obs::histogram("train.grad_norm.time").record(clipped);
                if cfg.mse_anchor > 0.0 {
                    for (r, s) in seed.iter_mut().enumerate() {
                        let out = (t_hat[r] * round_scale).max(1e-12).ln();
                        let target = t_meas[(i, r)].max(1e-12).ln() + round_scale.ln();
                        *s += cfg.mse_anchor * 2.0 * (out - target) / n as f64;
                    }
                }
                if seed.iter().any(|v| !v.is_finite()) {
                    mfcp_obs::counter("train.skipped_gradients").inc();
                    report
                        .recovery
                        .push(RecoveryEvent::SkippedGradient { round, cluster: i });
                } else if clipped > 0.0 || cfg.mse_anchor > 0.0 {
                    let seed_grad = Matrix::from_fn(n, 1, |r, _| seed[r]);
                    let mut g = Graph::new();
                    let xi = g.input(features.clone());
                    let pass = predictors[i].time_model.forward(&mut g, xi);
                    g.backward_with_seed(pass.output, seed_grad);
                    let grads = predictors[i].time_model.grads(&g, &pass);
                    let mut params = predictors[i].time_model.params_mut();
                    opt_t[i].step(&mut params, &grads);
                }
            }
            if update_rel {
                let mut seed: Vec<f64> = dl_da_i.clone();
                let clipped = clip_l2(&mut seed, cfg.grad_clip);
                mfcp_obs::histogram("train.grad_norm.rel").record(clipped);
                if cfg.mse_anchor > 0.0 {
                    for (r, s) in seed.iter_mut().enumerate() {
                        *s += cfg.mse_anchor * 2.0 * (a_hat[r] - a_meas[(i, r)]) / n as f64;
                    }
                }
                if seed.iter().any(|v| !v.is_finite()) {
                    mfcp_obs::counter("train.skipped_gradients").inc();
                    report
                        .recovery
                        .push(RecoveryEvent::SkippedGradient { round, cluster: i });
                } else if clipped > 0.0 || cfg.mse_anchor > 0.0 {
                    let seed_grad = Matrix::from_fn(n, 1, |r, _| seed[r]);
                    let mut g = Graph::new();
                    let xi = g.input(features.clone());
                    let pass = predictors[i].rel_model.forward(&mut g, xi);
                    g.backward_with_seed(pass.output, seed_grad);
                    let grads = predictors[i].rel_model.grads(&g, &pass);
                    let mut params = predictors[i].rel_model.params_mut();
                    opt_a[i].step(&mut params, &grads);
                }
            }
        }

        // ---- periodic checkpoint ---------------------------------------
        if cfg.checkpoint_every > 0 && (round + 1) % cfg.checkpoint_every == 0 {
            if let Some(dir) = &cfg.checkpoint_dir {
                let _ckpt_span = mfcp_obs::span("checkpoint");
                let started = std::time::Instant::now();
                if write_checkpoint(dir, &predictors).is_ok() {
                    mfcp_obs::counter("train.checkpoints").inc();
                    mfcp_obs::histogram("train.checkpoint_secs").record_duration(started.elapsed());
                    report.recovery.push(RecoveryEvent::Checkpoint { round });
                }
            }
        }

        // ---- best-snapshot validation ----------------------------------
        let last = round + 1 == cfg.rounds;
        if !val_rounds.is_empty() && ((round + 1) % cfg.validate_every.max(1) == 0 || last) {
            let score = {
                let _val_span = mfcp_obs::span("validation");
                validation_regret(
                    &predictors,
                    &val,
                    &val_times_scaled,
                    &val_rounds,
                    cfg,
                    &speedup,
                )
            };
            mfcp_obs::histogram("train.validation.regret").record(score);
            report.validation_history.push(score);
            if score < best_score {
                best_score = score;
                best_predictors = predictors.clone();
                best_round = round + 1;
            }
        }
    }

    if !val_rounds.is_empty() {
        predictors = best_predictors;
        report.best_round = best_round;
    }

    (
        MfcpPredictor {
            predictors,
            time_scale,
            variant: match cfg.mode {
                GradientMode::Analytic => "MFCP-AD".into(),
                GradientMode::ForwardGradient(_) => "MFCP-FG".into(),
            },
        },
        report,
    )
}

/// Stacks per-cluster predictions (scaled time units) into matrices.
fn predicted_matrices(predictors: &[ClusterPredictor], features: &Matrix) -> (Matrix, Matrix) {
    let m = predictors.len();
    let n = features.rows();
    let mut t = Matrix::zeros(m, n);
    let mut a = Matrix::zeros(m, n);
    for (i, p) in predictors.iter().enumerate() {
        let ti = p.predict_times(features);
        let ai = p.predict_reliability(features);
        for j in 0..n {
            t[(i, j)] = ti[j].max(1e-6);
            a[(i, j)] = ai[j].clamp(0.0, 1.0);
        }
    }
    (t, a)
}

/// A tiny deterministic helper for picking distinct round indices in
/// benches and tests.
pub fn sample_round_indices(total: usize, round_size: usize, rng: &mut impl Rng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..total).collect();
    mfcp_nn::data::shuffle(&mut idx, rng);
    idx.truncate(round_size.min(total));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfcp_platform::dataset::NoiseConfig;
    use mfcp_platform::embedding::FeatureEmbedder;
    use mfcp_platform::settings::{ClusterPool, Setting};
    use mfcp_platform::task::TaskGenerator;

    fn dataset(n: usize, seed: u64) -> PlatformDataset {
        let model = ClusterPool::standard().setting(Setting::A);
        let mut rng = StdRng::seed_from_u64(seed);
        PlatformDataset::generate(
            &model,
            &FeatureEmbedder::default_platform(),
            &TaskGenerator::default(),
            n,
            &NoiseConfig::default(),
            &mut rng,
        )
    }

    fn quick_tsm_cfg() -> TsmTrainConfig {
        TsmTrainConfig {
            hidden: vec![24],
            epochs: 120,
            lr: 0.01,
            batch_size: 16,
            ..Default::default()
        }
    }

    #[test]
    fn tsm_learns_better_than_mean_predictor() {
        let train = dataset(80, 1);
        let test = dataset(40, 2);
        let tsm = train_tsm(&train, &quick_tsm_cfg(), 7);
        let (t_hat, _) = tsm.matrices(&test.features);
        // Compare against predicting the per-cluster mean (TAM's view).
        let mut mse_tsm = 0.0;
        let mut mse_mean = 0.0;
        for i in 0..3 {
            let mean_i = train.times.row(i).iter().sum::<f64>() / train.len() as f64;
            for j in 0..test.len() {
                let truth = test.true_times[(i, j)];
                mse_tsm += (t_hat[(i, j)] - truth).powi(2);
                mse_mean += (mean_i - truth).powi(2);
            }
        }
        assert!(
            mse_tsm < mse_mean * 0.8,
            "TSM should clearly beat the constant predictor: {mse_tsm} vs {mse_mean}"
        );
    }

    #[test]
    fn tsm_deterministic_under_seed() {
        let train = dataset(30, 3);
        let a = train_tsm(&train, &quick_tsm_cfg(), 11);
        let b = train_tsm(&train, &quick_tsm_cfg(), 11);
        let (ta, _) = a.matrices(&train.features);
        let (tb, _) = b.matrices(&train.features);
        assert!(ta.approx_eq(&tb, 1e-12));
    }

    #[test]
    fn ucb_has_positive_widths_after_training() {
        let train = dataset(40, 4);
        let ucb = train_ucb(&train, &quick_tsm_cfg(), 1.0, 13);
        assert!(ucb.time_std.iter().all(|&s| s > 0.0));
        assert!(ucb.rel_std.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn dual_head_trains_online_from_measured_solves() {
        let train = dataset(40, 21);
        let cfg = MfcpTrainConfig {
            warm_start: quick_tsm_cfg(),
            rounds: 12,
            round_size: 5,
            mode: GradientMode::Analytic,
            ..Default::default()
        };
        let mut head = LearnedDualHead::new(train.clusters(), 99);
        let (_, report) = train_mfcp_with_dual_head(&train, &cfg, 23, &mut head);
        let rejected = report
            .recovery
            .iter()
            .filter(|e| matches!(e, RecoveryEvent::BadDualSample { .. }))
            .count();
        // Every round's measured optimum either trained the head or left
        // a typed rejection event — none vanish silently.
        assert_eq!(head.observations() as usize + rejected, cfg.rounds);
        assert_eq!(rejected, 0, "clean synthetic data must never reject");
        assert!(head.ready(), "12 observations clear the readiness bar");

        // The config flag exercises the same path with a run-local head.
        let flag_cfg = MfcpTrainConfig {
            learned_duals: true,
            rounds: 3,
            ..cfg
        };
        let (_, flag_report) = train_mfcp(&train, &flag_cfg, 23);
        assert_eq!(flag_report.loss_history.len(), 3);
    }

    #[test]
    fn mfcp_ad_training_runs_and_reduces_regret_loss() {
        let train = dataset(60, 5);
        let cfg = MfcpTrainConfig {
            warm_start: quick_tsm_cfg(),
            rounds: 40,
            round_size: 5,
            lr: 3e-3,
            gamma: 0.8,
            mode: GradientMode::Analytic,
            ..Default::default()
        };
        let (pred, report) = train_mfcp(&train, &cfg, 17);
        assert_eq!(pred.variant, "MFCP-AD");
        assert_eq!(report.loss_history.len(), 40);
        assert!(report.loss_history.iter().all(|l| l.is_finite()));
        // Sampled-round regret is heavy-tailed — a hard draw can spike an
        // order of magnitude above the median regardless of predictor
        // quality — and the spike guard records exactly which rounds it
        // rejected (their updates never happened). Judge training health
        // on the accepted trajectory: it must not drift upward.
        let rolled: std::collections::HashSet<usize> =
            report.rolled_back_rounds().into_iter().collect();
        let accepted: Vec<f64> = report
            .loss_history
            .iter()
            .enumerate()
            .filter(|(r, _)| !rolled.contains(r))
            .map(|(_, &l)| l)
            .collect();
        assert!(
            accepted.len() >= 20,
            "guard should accept most rounds: {} of 40 ({:?})",
            accepted.len(),
            report.recovery
        );
        let q = accepted.len() / 4;
        let early: f64 = accepted[..q].iter().sum::<f64>() / q as f64;
        let late: f64 = accepted[accepted.len() - q..].iter().sum::<f64>() / q as f64;
        assert!(
            late <= early + 0.05,
            "accepted regret loss should not blow up: early {early}, late {late}"
        );
    }

    /// End-to-end gradient check of the full MFCP-AD chain:
    /// dL/dω = dL/dX* · dX*/dt̂ (KKT) · dt̂/dout (exp head) · dout/dω
    /// against central differences of the actual pipeline loss.
    #[test]
    fn decision_gradient_chain_matches_finite_differences() {
        use mfcp_optim::objective;
        let train = dataset(12, 99);
        let m = train.clusters();
        let n = 5;
        let gamma = 0.8;
        let relaxation = RelaxationParams::default();
        let solver = SolverOptions {
            max_iters: 20_000,
            tol: 1e-14,
            ..Default::default()
        };
        let idx: Vec<usize> = (0..n).collect();
        let features =
            Matrix::from_fn(n, train.features.cols(), |r, c| train.features[(idx[r], c)]);
        let time_scale = train.times.mean();
        let t_meas = Matrix::from_fn(m, n, |i, j| train.times[(i, idx[j])] / time_scale);
        let a_meas = Matrix::from_fn(m, n, |i, j| train.reliability[(i, idx[j])]);
        let problem_true = MatchingProblem::new(t_meas, a_meas, gamma);

        let mut rng = StdRng::seed_from_u64(5);
        let predictor = ClusterPredictor::new(train.features.cols(), &[8], &mut rng);
        let cluster = 0usize;

        // The pipeline loss as a function of the time model's parameters.
        let loss_of = |p: &ClusterPredictor| -> f64 {
            let t_hat = p.predict_times(&features);
            let a_hat: Vec<f64> = p
                .predict_reliability(&features)
                .into_iter()
                .map(|v| v.clamp(0.0, 1.0))
                .collect();
            let problem_pred = problem_true
                .with_time_row(cluster, &t_hat)
                .with_reliability_row(cluster, &a_hat);
            let sol = solve_relaxed(&problem_pred, &relaxation, &solver);
            objective::value(&problem_true, &relaxation, &sol.x) / n as f64
        };

        // Analytic chain.
        let t_hat = predictor.predict_times(&features);
        let a_hat: Vec<f64> = predictor
            .predict_reliability(&features)
            .into_iter()
            .map(|v| v.clamp(0.0, 1.0))
            .collect();
        let problem_pred = problem_true
            .with_time_row(cluster, &t_hat)
            .with_reliability_row(cluster, &a_hat);
        let sol = solve_relaxed(&problem_pred, &relaxation, &solver);
        let dl_dx = objective::grad_x(&problem_true, &relaxation, &sol.x).scale(1.0 / n as f64);
        let grads = kkt::implicit_gradients(&problem_pred, &relaxation, &sol.x, &dl_dx).unwrap();
        let dl_dt_row = grads.dl_dt.row(cluster).to_vec();
        let seed_grad = Matrix::from_fn(n, 1, |r, _| dl_dt_row[r] * t_hat[r]);
        let mut g = Graph::new();
        let xi = g.input(features.clone());
        let pass = predictor.time_model.forward(&mut g, xi);
        g.backward_with_seed(pass.output, seed_grad);
        let analytic = predictor.time_model.grads(&g, &pass);

        // Check a handful of parameters of each tensor numerically.
        let h = 1e-5;
        let mut checked = 0;
        for (pi, g_tensor) in analytic.iter().enumerate() {
            for &(r, c) in &[(0usize, 0usize)] {
                if r >= g_tensor.rows() || c >= g_tensor.cols() {
                    continue;
                }
                let mut p_plus = predictor.clone();
                p_plus.time_model.params_mut()[pi][(r, c)] += h;
                let mut p_minus = predictor.clone();
                p_minus.time_model.params_mut()[pi][(r, c)] -= h;
                let numeric = (loss_of(&p_plus) - loss_of(&p_minus)) / (2.0 * h);
                let a = g_tensor[(r, c)];
                assert!(
                    (a - numeric).abs() < 5e-3 * (1.0 + numeric.abs().max(a.abs())),
                    "param tensor {pi} entry ({r},{c}): analytic {a} vs numeric {numeric}"
                );
                checked += 1;
            }
        }
        assert!(checked >= 3, "checked too few parameters");
    }

    #[test]
    fn mfcp_fg_training_runs() {
        let train = dataset(50, 6);
        let cfg = MfcpTrainConfig {
            warm_start: quick_tsm_cfg(),
            rounds: 10,
            round_size: 5,
            lr: 3e-3,
            gamma: 0.8,
            mode: GradientMode::ForwardGradient(ZerothOrderOptions {
                delta: 0.05,
                samples: 4,
                parallel: ParallelConfig::default(),
            }),
            ..Default::default()
        };
        let (pred, report) = train_mfcp(&train, &cfg, 19);
        assert_eq!(pred.variant, "MFCP-FG");
        assert_eq!(report.loss_history.len(), 10);
        // Predictions remain valid after decision-focused updates.
        let (t, a) = predicted_matrices(&pred.predictors, &train.features);
        assert!(t.as_slice().iter().all(|&v| v > 0.0 && v.is_finite()));
        assert!(a.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn mfcp_fg_supports_parallel_speedup_curves() {
        let train = dataset(40, 7);
        let cfg = MfcpTrainConfig {
            warm_start: quick_tsm_cfg(),
            rounds: 6,
            round_size: 5,
            gamma: 0.8,
            speedup: vec![SpeedupCurve::paper_parallel(); 3],
            mode: GradientMode::ForwardGradient(ZerothOrderOptions {
                delta: 0.05,
                samples: 4,
                parallel: ParallelConfig::default(),
            }),
            ..Default::default()
        };
        let (_pred, report) = train_mfcp(&train, &cfg, 23);
        assert!(report.loss_history.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn nan_poisoned_round_rolls_back_instead_of_diverging() {
        let mut train = dataset(12, 31);
        // One corrupted measurement: any round that samples task 3 sees a
        // NaN execution time, so its regret loss is NaN and the guard must
        // roll the iterate back rather than let Adam ingest NaN gradients.
        train.times[(0, 3)] = f64::NAN;
        let cfg = MfcpTrainConfig {
            warm_start: quick_tsm_cfg(),
            rounds: 12,
            round_size: 6,
            gamma: 0.8,
            validation_rounds: 0,
            ..Default::default()
        };
        let (pred, report) = train_mfcp(&train, &cfg, 41);
        assert!(
            report.rollbacks() >= 1,
            "expected at least one rollback: {:?}",
            report.recovery
        );
        let (t, a) = predicted_matrices(&pred.predictors, &train.features);
        assert!(t.as_slice().iter().all(|v| v.is_finite() && *v > 0.0));
        assert!(a.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn tight_spike_guard_triggers_rollbacks() {
        let train = dataset(40, 9);
        // With the threshold at exactly the recent mean, ordinary
        // round-to-round sampling noise counts as a spike, so the guard
        // machinery must fire and training must still finish cleanly.
        let cfg = MfcpTrainConfig {
            warm_start: quick_tsm_cfg(),
            rounds: 20,
            round_size: 5,
            gamma: 0.8,
            validation_rounds: 0,
            spike_factor: 1.0,
            spike_slack: 0.0,
            ..Default::default()
        };
        let (_pred, report) = train_mfcp(&train, &cfg, 3);
        assert!(
            report.rollbacks() >= 1,
            "mean-level threshold should flag sampling noise: {:?}",
            report.recovery
        );
        assert_eq!(report.loss_history.len(), 20);
        assert_eq!(report.rolled_back_rounds().len(), report.rollbacks());
    }

    #[test]
    fn checkpoint_and_resume_round_trip() {
        let train = dataset(30, 8);
        let dir = std::env::temp_dir().join("mfcp_train_ckpt_test");
        std::fs::remove_dir_all(&dir).ok();
        let cfg = MfcpTrainConfig {
            warm_start: quick_tsm_cfg(),
            rounds: 6,
            round_size: 5,
            gamma: 0.8,
            validation_rounds: 0,
            checkpoint_every: 3,
            checkpoint_dir: Some(dir.clone()),
            ..Default::default()
        };
        let (_pred, report) = train_mfcp(&train, &cfg, 29);
        assert!(report
            .recovery
            .iter()
            .any(|e| matches!(e, RecoveryEvent::Checkpoint { .. })));
        let loaded = load_checkpoint(&dir, train.clusters()).expect("checkpoint loads");
        assert_eq!(loaded.len(), train.clusters());

        // Resuming skips the warm start and starts from the checkpoint.
        let resume_cfg = MfcpTrainConfig {
            rounds: 2,
            resume: true,
            ..cfg.clone()
        };
        let (pred2, report2) = train_mfcp(&train, &resume_cfg, 29);
        assert!(report2.recovery.contains(&RecoveryEvent::Resumed));
        let (t, _) = predicted_matrices(&pred2.predictors, &train.features);
        assert!(t.as_slice().iter().all(|v| v.is_finite()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn solve_cache_training_hits_and_stays_healthy() {
        // 5-of-8 task rounds: any two rounds overlap in at least two
        // tasks (pigeonhole), so warm hits are guaranteed from round 1.
        let train = dataset(8, 14);
        let cfg = MfcpTrainConfig {
            warm_start: quick_tsm_cfg(),
            rounds: 8,
            round_size: 5,
            gamma: 0.8,
            validation_rounds: 0,
            solve_cache: true,
            ..Default::default()
        };
        let mut cache = SolveCache::new();
        let (pred, report) = train_mfcp_with_cache(&train, &cfg, 15, &mut cache);
        assert!(report.loss_history.iter().all(|l| l.is_finite()));
        assert!(
            cache.stats.hits >= 2 * 7 * 2,
            "resampled tasks must hit their cached columns: {:?}",
            cache.stats
        );
        assert_eq!(cache.clusters.len(), train.clusters());
        assert!(!cache.pred.is_empty() && !cache.meas.is_empty());
        assert!(cache.clusters.iter().all(|f| !f.is_empty()));
        let (t, a) = predicted_matrices(&pred.predictors, &train.features);
        assert!(t.as_slice().iter().all(|&v| v > 0.0 && v.is_finite()));
        assert!(a.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn poisoned_cluster_warm_state_goes_stale_not_wrong() {
        let train = dataset(12, 21);
        let cfg = MfcpTrainConfig {
            warm_start: quick_tsm_cfg(),
            rounds: 3,
            round_size: 5,
            gamma: 0.8,
            validation_rounds: 0,
            solve_cache: true,
            ..Default::default()
        };
        let mut cache = SolveCache::new();
        // Poison every task's cached column in every cluster family:
        // NaN entries AND the wrong height at once.
        cache.clusters = vec![TaskColumns::default(); train.clusters()];
        for family in cache.clusters.iter_mut() {
            for task in 0..train.len() {
                family.insert(task, vec![f64::NAN; 1]);
            }
        }
        let (_pred, report) = train_mfcp_with_cache(&train, &cfg, 33, &mut cache);
        let stale_clusters: Vec<_> = report
            .recovery
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    RecoveryEvent::StaleWarmStart {
                        round: 0,
                        cluster: Some(_)
                    }
                )
            })
            .collect();
        assert_eq!(
            stale_clusters.len(),
            train.clusters(),
            "every poisoned cluster family must report stale state: {:?}",
            report.recovery
        );
        // One eviction per sampled task per cluster family in round 0.
        assert!(cache.stats.stale >= (5 * train.clusters()) as u64);
        assert!(report.loss_history.iter().all(|l| l.is_finite()));
        // The poisoned columns were replaced by real solutions.
        assert!(cache.clusters.iter().all(|f| !f.is_empty()));
    }

    #[test]
    fn fg_gradients_identical_under_one_and_many_threads() {
        // Regression for the forced-sequential perturbation solves: the
        // caller's `parallel` config must be respected AND must not change
        // the FG estimates — probe directions are pre-drawn sequentially
        // and the summation order is fixed, so the whole training
        // trajectory is bitwise reproducible at any thread count.
        let train = dataset(30, 12);
        let mk = |threads: usize| MfcpTrainConfig {
            warm_start: quick_tsm_cfg(),
            rounds: 6,
            round_size: 5,
            gamma: 0.8,
            validation_rounds: 0,
            mode: GradientMode::ForwardGradient(ZerothOrderOptions {
                delta: 0.05,
                samples: 4,
                parallel: if threads == 1 {
                    ParallelConfig::sequential()
                } else {
                    ParallelConfig::with_threads(threads)
                },
            }),
            ..Default::default()
        };
        let (p1, r1) = train_mfcp(&train, &mk(1), 77);
        let (p4, r4) = train_mfcp(&train, &mk(4), 77);
        assert_eq!(r1.loss_history.len(), r4.loss_history.len());
        for (a, b) in r1.loss_history.iter().zip(&r4.loss_history) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "loss history must be bit-identical across thread counts"
            );
        }
        let (t1, _) = predicted_matrices(&p1.predictors, &train.features);
        let (t4, _) = predicted_matrices(&p4.predictors, &train.features);
        assert_eq!(t1.as_slice(), t4.as_slice());
    }

    #[test]
    fn sample_round_indices_distinct() {
        let mut rng = StdRng::seed_from_u64(1);
        let idx = sample_round_indices(20, 5, &mut rng);
        assert_eq!(idx.len(), 5);
        let set: std::collections::HashSet<_> = idx.iter().collect();
        assert_eq!(set.len(), 5);
        // Clamps when asking for more than available.
        assert_eq!(sample_round_indices(3, 10, &mut rng).len(), 3);
    }
}
