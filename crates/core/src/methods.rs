//! The five evaluated systems (§4.1.2): TAM, TSM, UCB, MFCP-AD, MFCP-FG.
//!
//! Every method reduces to the same interface: given the features of one
//! round of tasks, produce the predicted performance matrices `(T̂, Â)`
//! that the (shared) matching pipeline then optimizes. What differs is how
//! the predictions are formed and how the predictors were trained.

use crate::predictor::ClusterPredictor;
use mfcp_linalg::Matrix;
use mfcp_platform::dataset::PlatformDataset;

/// A system that predicts per-cluster performance for a round of tasks.
///
/// `Sync` is required so evaluation rounds can fan out across threads;
/// predictors are plain data after training.
pub trait PerformancePredictor: Sync {
    /// Display name (matches the paper's method names).
    fn name(&self) -> String;

    /// Predicts `(T̂, Â)` (`M x N` each) for an `N x d` feature batch.
    ///
    /// Reliability entries must lie in `[0, 1]` and times must be
    /// positive; implementations clamp as needed.
    fn predict(&self, features: &Matrix) -> (Matrix, Matrix);
}

/// Task-Agnostic Matching: "ignores task variations in execution time and
/// reliability, using average cluster performance across tasks".
#[derive(Debug, Clone)]
pub struct TamPredictor {
    /// Mean measured execution time per cluster.
    pub mean_times: Vec<f64>,
    /// Mean measured reliability per cluster.
    pub mean_reliability: Vec<f64>,
}

impl TamPredictor {
    /// Computes per-cluster averages over the training measurements.
    pub fn fit(train: &PlatformDataset) -> Self {
        let m = train.clusters();
        let n = train.len().max(1) as f64;
        let mean_times = (0..m)
            .map(|i| train.times.row(i).iter().sum::<f64>() / n)
            .collect();
        let mean_reliability = (0..m)
            .map(|i| train.reliability.row(i).iter().sum::<f64>() / n)
            .collect();
        TamPredictor {
            mean_times,
            mean_reliability,
        }
    }
}

impl PerformancePredictor for TamPredictor {
    fn name(&self) -> String {
        "TAM".into()
    }

    fn predict(&self, features: &Matrix) -> (Matrix, Matrix) {
        let n = features.rows();
        let m = self.mean_times.len();
        let t = Matrix::from_fn(m, n, |i, _| self.mean_times[i].max(1e-6));
        let a = Matrix::from_fn(m, n, |i, _| self.mean_reliability[i].clamp(0.0, 1.0));
        (t, a)
    }
}

/// Two-Stage Method: per-cluster MLPs trained by MSE, then matching on
/// the point predictions (the conventional predict-then-optimize
/// pipeline, e.g. Yang et al. 2022).
///
/// The networks learn execution times in units of `time_scale` (the mean
/// measured time of the training set) so their targets are O(1); the
/// prediction matrices are rescaled back to hours.
#[derive(Debug, Clone)]
pub struct TsmPredictor {
    /// One predictor pair per cluster.
    pub predictors: Vec<ClusterPredictor>,
    /// Unit of the time head's output (hours per predicted unit).
    pub time_scale: f64,
}

impl TsmPredictor {
    /// Builds the prediction matrices for a feature batch (times in
    /// hours).
    pub fn matrices(&self, features: &Matrix) -> (Matrix, Matrix) {
        let m = self.predictors.len();
        let n = features.rows();
        let mut t = Matrix::zeros(m, n);
        let mut a = Matrix::zeros(m, n);
        for (i, p) in self.predictors.iter().enumerate() {
            let ti = p.predict_times(features);
            let ai = p.predict_reliability(features);
            for j in 0..n {
                t[(i, j)] = (ti[j] * self.time_scale).max(1e-6);
                a[(i, j)] = ai[j].clamp(0.0, 1.0);
            }
        }
        (t, a)
    }
}

impl TsmPredictor {
    /// Serializes the full method (scale + every cluster's networks).
    pub fn to_document(&self) -> String {
        let mut out = format!(
            "mfcp-tsm v1\ntime_scale {:e}\nclusters {}\n",
            self.time_scale,
            self.predictors.len()
        );
        for p in &self.predictors {
            out.push_str("==cluster==\n");
            out.push_str(&p.to_document());
        }
        out
    }

    /// Parses a document produced by [`TsmPredictor::to_document`].
    pub fn from_document(text: &str) -> Result<Self, mfcp_nn::persist::ModelFormatError> {
        let err = |m: &str| mfcp_nn::persist::ModelFormatError {
            message: m.to_string(),
        };
        let rest = text
            .strip_prefix("mfcp-tsm v1\n")
            .ok_or_else(|| err("bad tsm header"))?;
        let (scale_line, rest) = rest.split_once('\n').ok_or_else(|| err("truncated"))?;
        let time_scale: f64 = scale_line
            .strip_prefix("time_scale ")
            .ok_or_else(|| err("missing time_scale"))?
            .parse()
            .map_err(|_| err("bad time_scale"))?;
        let (count_line, rest) = rest.split_once('\n').ok_or_else(|| err("truncated"))?;
        let count: usize = count_line
            .strip_prefix("clusters ")
            .ok_or_else(|| err("missing cluster count"))?
            .parse()
            .map_err(|_| err("bad cluster count"))?;
        let sections: Vec<&str> = rest
            .split("==cluster==\n")
            .filter(|s| !s.trim().is_empty())
            .collect();
        if sections.len() != count {
            return Err(err("cluster count mismatch"));
        }
        let predictors = sections
            .into_iter()
            .map(ClusterPredictor::from_document)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TsmPredictor {
            predictors,
            time_scale,
        })
    }
}

impl PerformancePredictor for TsmPredictor {
    fn name(&self) -> String {
        "TSM".into()
    }

    fn predict(&self, features: &Matrix) -> (Matrix, Matrix) {
        self.matrices(features)
    }
}

/// Upper-Confidence-Bound matching (Zhou et al. 2020 flavour): the TSM
/// predictors plus per-cluster residual scales; matching uses the robust
/// (pessimistic) corner of the confidence box — inflated times, deflated
/// reliabilities — so prediction errors cannot make a bad cluster look
/// good.
#[derive(Debug, Clone)]
pub struct UcbPredictor {
    /// Underlying point predictors.
    pub inner: TsmPredictor,
    /// Per-cluster residual std of the time predictor.
    pub time_std: Vec<f64>,
    /// Per-cluster residual std of the reliability predictor.
    pub rel_std: Vec<f64>,
    /// Confidence width multiplier `κ`.
    pub kappa: f64,
}

impl UcbPredictor {
    /// Wraps trained TSM predictors with residual statistics measured on
    /// `train`.
    pub fn from_tsm(inner: TsmPredictor, train: &PlatformDataset, kappa: f64) -> Self {
        let (t_hat, a_hat) = inner.matrices(&train.features);
        // Predictions come out as M x N with N = train.len(); residuals
        // against the measured matrices.
        let m = train.clusters();
        let n = train.len().max(1) as f64;
        let mut time_std = vec![0.0; m];
        let mut rel_std = vec![0.0; m];
        for i in 0..m {
            let mut st = 0.0;
            let mut sa = 0.0;
            for j in 0..train.len() {
                let dt = t_hat[(i, j)] - train.times[(i, j)];
                let da = a_hat[(i, j)] - train.reliability[(i, j)];
                st += dt * dt;
                sa += da * da;
            }
            time_std[i] = (st / n).sqrt();
            rel_std[i] = (sa / n).sqrt();
        }
        UcbPredictor {
            inner,
            time_std,
            rel_std,
            kappa,
        }
    }
}

impl PerformancePredictor for UcbPredictor {
    fn name(&self) -> String {
        "UCB".into()
    }

    fn predict(&self, features: &Matrix) -> (Matrix, Matrix) {
        let (mut t, mut a) = self.inner.matrices(features);
        for i in 0..t.rows() {
            for j in 0..t.cols() {
                t[(i, j)] = (t[(i, j)] + self.kappa * self.time_std[i]).max(1e-6);
                a[(i, j)] = (a[(i, j)] - self.kappa * self.rel_std[i]).clamp(0.0, 1.0);
            }
        }
        (t, a)
    }
}

/// Ensemble UCB: an extension of the paper's UCB baseline with
/// *heteroscedastic, per-task* uncertainty. `E` independently initialized
/// TSM fits form a deep ensemble; the matching uses the pessimistic
/// corner of the per-entry ensemble spread (mean + κ·std time,
/// mean − κ·std reliability). Unlike the per-cluster constant widths of
/// [`UcbPredictor`], the widths here grow exactly where the predictors
/// disagree — unfamiliar tasks — rather than shifting whole clusters.
#[derive(Debug, Clone)]
pub struct EnsembleUcbPredictor {
    /// Independently trained members.
    pub members: Vec<TsmPredictor>,
    /// Confidence width multiplier `κ`.
    pub kappa: f64,
}

impl EnsembleUcbPredictor {
    /// Wraps independently trained TSM fits.
    ///
    /// # Panics
    /// Panics on an empty ensemble.
    pub fn new(members: Vec<TsmPredictor>, kappa: f64) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        EnsembleUcbPredictor { members, kappa }
    }

    /// Per-entry ensemble mean and standard deviation of `(T̂, Â)`.
    pub fn statistics(&self, features: &Matrix) -> (Matrix, Matrix, Matrix, Matrix) {
        let preds: Vec<(Matrix, Matrix)> =
            self.members.iter().map(|m| m.matrices(features)).collect();
        let (m, n) = preds[0].0.shape();
        let e = preds.len() as f64;
        let mut t_mean = Matrix::zeros(m, n);
        let mut a_mean = Matrix::zeros(m, n);
        for (t, a) in &preds {
            t_mean += t;
            a_mean += a;
        }
        t_mean = t_mean.scale(1.0 / e);
        a_mean = a_mean.scale(1.0 / e);
        let mut t_var = Matrix::zeros(m, n);
        let mut a_var = Matrix::zeros(m, n);
        for (t, a) in &preds {
            for i in 0..m {
                for j in 0..n {
                    t_var[(i, j)] += (t[(i, j)] - t_mean[(i, j)]).powi(2) / e;
                    a_var[(i, j)] += (a[(i, j)] - a_mean[(i, j)]).powi(2) / e;
                }
            }
        }
        (t_mean, a_mean, t_var.map(f64::sqrt), a_var.map(f64::sqrt))
    }
}

impl PerformancePredictor for EnsembleUcbPredictor {
    fn name(&self) -> String {
        "UCB-E".into()
    }

    fn predict(&self, features: &Matrix) -> (Matrix, Matrix) {
        let (t_mean, a_mean, t_std, a_std) = self.statistics(features);
        let (m, n) = t_mean.shape();
        let mut t = Matrix::zeros(m, n);
        let mut a = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                t[(i, j)] = (t_mean[(i, j)] + self.kappa * t_std[(i, j)]).max(1e-6);
                a[(i, j)] = (a_mean[(i, j)] - self.kappa * a_std[(i, j)]).clamp(0.0, 1.0);
            }
        }
        (t, a)
    }
}

/// An MFCP predictor: structurally identical to TSM (per-cluster MLPs)
/// but trained end-to-end against the matching regret — see
/// [`crate::train::train_mfcp`]. The `variant` records the gradient path
/// used ("MFCP-AD" or "MFCP-FG").
#[derive(Debug, Clone)]
pub struct MfcpPredictor {
    /// One predictor pair per cluster.
    pub predictors: Vec<ClusterPredictor>,
    /// Unit of the time head's output (hours per predicted unit).
    pub time_scale: f64,
    /// "MFCP-AD" or "MFCP-FG".
    pub variant: String,
}

impl MfcpPredictor {
    fn matrices(&self, features: &Matrix) -> (Matrix, Matrix) {
        TsmPredictor {
            predictors: self.predictors.clone(),
            time_scale: self.time_scale,
        }
        .matrices(features)
    }
}

impl MfcpPredictor {
    /// Serializes the trained predictor (variant + scale + networks).
    pub fn to_document(&self) -> String {
        format!(
            "mfcp-dfl v1\nvariant {}\n{}",
            self.variant,
            TsmPredictor {
                predictors: self.predictors.clone(),
                time_scale: self.time_scale,
            }
            .to_document()
        )
    }

    /// Parses a document produced by [`MfcpPredictor::to_document`].
    pub fn from_document(text: &str) -> Result<Self, mfcp_nn::persist::ModelFormatError> {
        let err = |m: &str| mfcp_nn::persist::ModelFormatError {
            message: m.to_string(),
        };
        let rest = text
            .strip_prefix("mfcp-dfl v1\n")
            .ok_or_else(|| err("bad dfl header"))?;
        let (variant_line, rest) = rest.split_once('\n').ok_or_else(|| err("truncated"))?;
        let variant = variant_line
            .strip_prefix("variant ")
            .ok_or_else(|| err("missing variant"))?
            .to_string();
        let inner = TsmPredictor::from_document(rest)?;
        Ok(MfcpPredictor {
            predictors: inner.predictors,
            time_scale: inner.time_scale,
            variant,
        })
    }
}

impl PerformancePredictor for MfcpPredictor {
    fn name(&self) -> String {
        self.variant.clone()
    }

    fn predict(&self, features: &Matrix) -> (Matrix, Matrix) {
        self.matrices(features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfcp_platform::cluster::PerfModel;
    use mfcp_platform::dataset::NoiseConfig;
    use mfcp_platform::embedding::FeatureEmbedder;
    use mfcp_platform::settings::{ClusterPool, Setting};
    use mfcp_platform::task::TaskGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(n: usize, seed: u64) -> (PlatformDataset, PerfModel) {
        let model = ClusterPool::standard().setting(Setting::A);
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = PlatformDataset::generate(
            &model,
            &FeatureEmbedder::default_platform(),
            &TaskGenerator::default(),
            n,
            &NoiseConfig::default(),
            &mut rng,
        );
        (ds, model)
    }

    #[test]
    fn tam_predicts_constants_per_cluster() {
        let (ds, _) = dataset(30, 1);
        let tam = TamPredictor::fit(&ds);
        let (t, a) = tam.predict(&ds.features);
        assert_eq!(t.shape(), (3, 30));
        for i in 0..3 {
            for j in 1..30 {
                assert_eq!(t[(i, j)], t[(i, 0)], "TAM times are task-agnostic");
                assert_eq!(a[(i, j)], a[(i, 0)]);
            }
        }
        // TAM's mean matches the data mean.
        let expected = ds.times.row(0).iter().sum::<f64>() / 30.0;
        assert!((t[(0, 0)] - expected).abs() < 1e-12);
    }

    #[test]
    fn ucb_is_pessimistic_relative_to_tsm() {
        let (ds, _) = dataset(25, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let predictors = (0..3)
            .map(|_| ClusterPredictor::new(ds.features.cols(), &[8], &mut rng))
            .collect();
        let tsm = TsmPredictor {
            predictors,
            time_scale: 1.0,
        };
        let ucb = UcbPredictor::from_tsm(tsm.clone(), &ds, 1.0);
        // Untrained predictors still produce nonzero residual stds.
        assert!(ucb.time_std.iter().all(|&s| s > 0.0));
        let (t_tsm, a_tsm) = tsm.predict(&ds.features);
        let (t_ucb, a_ucb) = ucb.predict(&ds.features);
        for i in 0..3 {
            for j in 0..25 {
                assert!(t_ucb[(i, j)] >= t_tsm[(i, j)]);
                assert!(a_ucb[(i, j)] <= a_tsm[(i, j)]);
            }
        }
    }

    #[test]
    fn ucb_kappa_zero_equals_tsm() {
        let (ds, _) = dataset(10, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let predictors = (0..3)
            .map(|_| ClusterPredictor::new(ds.features.cols(), &[8], &mut rng))
            .collect();
        let tsm = TsmPredictor {
            predictors,
            time_scale: 1.0,
        };
        let ucb = UcbPredictor::from_tsm(tsm.clone(), &ds, 0.0);
        let (t_tsm, a_tsm) = tsm.predict(&ds.features);
        let (t_ucb, a_ucb) = ucb.predict(&ds.features);
        assert!(t_ucb.approx_eq(&t_tsm, 1e-12));
        assert!(a_ucb.approx_eq(&a_tsm, 1e-12));
    }

    #[test]
    fn ensemble_ucb_is_pessimistic_and_width_reflects_disagreement() {
        let (ds, _) = dataset(20, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let members: Vec<TsmPredictor> = (0..4)
            .map(|_| TsmPredictor {
                predictors: (0..3)
                    .map(|_| ClusterPredictor::new(ds.features.cols(), &[6], &mut rng))
                    .collect(),
                time_scale: 1.0,
            })
            .collect();
        let ens = EnsembleUcbPredictor::new(members, 1.0);
        let (t_mean, a_mean, t_std, a_std) = ens.statistics(&ds.features);
        // Untrained members disagree, so widths are strictly positive.
        assert!(t_std.max_abs() > 0.0);
        assert!(a_std.max_abs() > 0.0);
        let (t, a) = ens.predict(&ds.features);
        for i in 0..3 {
            for j in 0..ds.len() {
                assert!(t[(i, j)] >= t_mean[(i, j)] - 1e-12);
                assert!(a[(i, j)] <= a_mean[(i, j)] + 1e-12);
                assert!((0.0..=1.0).contains(&a[(i, j)]));
            }
        }
        // κ = 0 collapses to the ensemble mean.
        let ens0 = EnsembleUcbPredictor::new(ens.members.clone(), 0.0);
        let (t0, _) = ens0.predict(&ds.features);
        assert!(t0.approx_eq(&t_mean.map(|v| v.max(1e-6)), 1e-12));
    }

    #[test]
    fn single_member_ensemble_equals_member() {
        let (ds, _) = dataset(8, 23);
        let mut rng = StdRng::seed_from_u64(24);
        let member = TsmPredictor {
            predictors: (0..3)
                .map(|_| ClusterPredictor::new(ds.features.cols(), &[6], &mut rng))
                .collect(),
            time_scale: 1.0,
        };
        let ens = EnsembleUcbPredictor::new(vec![member.clone()], 3.0);
        let (t_e, a_e) = ens.predict(&ds.features);
        let (t_m, a_m) = member.predict(&ds.features);
        // Zero spread: κ has no effect.
        assert!(t_e.approx_eq(&t_m, 1e-12));
        assert!(a_e.approx_eq(&a_m, 1e-12));
    }

    #[test]
    fn tsm_and_mfcp_documents_round_trip() {
        let (ds, _) = dataset(10, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let predictors: Vec<ClusterPredictor> = (0..3)
            .map(|_| ClusterPredictor::new(ds.features.cols(), &[6], &mut rng))
            .collect();
        let tsm = TsmPredictor {
            predictors: predictors.clone(),
            time_scale: 2.5,
        };
        let back = TsmPredictor::from_document(&tsm.to_document()).unwrap();
        assert_eq!(back.time_scale, 2.5);
        let (t1, a1) = tsm.predict(&ds.features);
        let (t2, a2) = back.predict(&ds.features);
        assert!(t1.approx_eq(&t2, 0.0));
        assert!(a1.approx_eq(&a2, 0.0));

        let mfcp = MfcpPredictor {
            predictors,
            time_scale: 2.5,
            variant: "MFCP-AD".into(),
        };
        let back = MfcpPredictor::from_document(&mfcp.to_document()).unwrap();
        assert_eq!(back.variant, "MFCP-AD");
        let (t3, _) = back.predict(&ds.features);
        assert!(t1.approx_eq(&t3, 0.0));
    }

    #[test]
    fn document_corruption_detected() {
        let (ds, _) = dataset(5, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let p = ClusterPredictor::new(ds.features.cols(), &[4], &mut rng);
        let doc = p.to_document();
        assert!(ClusterPredictor::from_document(&doc).is_ok());
        assert!(ClusterPredictor::from_document("garbage").is_err());
        assert!(
            ClusterPredictor::from_document(&doc.replace("--reliability--", "--oops--")).is_err()
        );
        assert!(TsmPredictor::from_document(&doc).is_err());
    }

    #[test]
    fn all_methods_respect_output_ranges() {
        let (ds, _) = dataset(15, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let predictors: Vec<ClusterPredictor> = (0..3)
            .map(|_| ClusterPredictor::new(ds.features.cols(), &[8], &mut rng))
            .collect();
        let methods: Vec<Box<dyn PerformancePredictor>> = vec![
            Box::new(TamPredictor::fit(&ds)),
            Box::new(TsmPredictor {
                predictors: predictors.clone(),
                time_scale: 1.0,
            }),
            Box::new(UcbPredictor::from_tsm(
                TsmPredictor {
                    predictors: predictors.clone(),
                    time_scale: 1.0,
                },
                &ds,
                1.0,
            )),
            Box::new(MfcpPredictor {
                predictors,
                time_scale: 1.0,
                variant: "MFCP-AD".into(),
            }),
        ];
        for method in &methods {
            let (t, a) = method.predict(&ds.features);
            assert_eq!(t.shape(), (3, 15), "{}", method.name());
            assert!(t.as_slice().iter().all(|&v| v > 0.0), "{}", method.name());
            assert!(
                a.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)),
                "{}",
                method.name()
            );
        }
    }
}
