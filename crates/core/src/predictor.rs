//! Per-cluster performance predictors `m_ω` (time) and `m_φ` (reliability).

use mfcp_autodiff::{Graph, NodeId};
use mfcp_linalg::Matrix;
use mfcp_nn::{Activation, Mlp, MlpPass};
use rand::Rng;

/// The pair of cluster-specific predictors of §2.1: `t̂ = m_ω(z)` with a
/// strictly positive output head and `â = m_φ(z)` with a sigmoid head.
///
/// The time network predicts **log execution time** (`t̂ = exp(out)`):
/// real cluster runtimes are heavy-tailed (a memory-thrashing job can be
/// 100x slower than the median), and a log head keeps both the regression
/// targets and the decision gradients well-conditioned across that range.
#[derive(Debug, Clone)]
pub struct ClusterPredictor {
    /// Execution-time network (`ω`) — linear output head, interpreted in
    /// log-time space.
    pub time_model: Mlp,
    /// Reliability network (`φ`).
    pub rel_model: Mlp,
}

/// Clamp on the log-time head so `exp` can never overflow.
pub const MAX_LOG_TIME: f64 = 30.0;

impl ClusterPredictor {
    /// Builds both networks with the given hidden widths.
    pub fn new(input_dim: usize, hidden: &[usize], rng: &mut impl Rng) -> Self {
        let mut dims = vec![input_dim];
        dims.extend_from_slice(hidden);
        dims.push(1);
        ClusterPredictor {
            time_model: Mlp::new(&dims, Activation::Relu, Activation::Identity, rng),
            rel_model: Mlp::new(&dims, Activation::Relu, Activation::Sigmoid, rng),
        }
    }

    /// Predicted execution times for an `N x d` feature batch
    /// (`exp` of the log-time head, clamped against overflow).
    pub fn predict_times(&self, features: &Matrix) -> Vec<f64> {
        self.time_model
            .predict(features)
            .into_vec()
            .into_iter()
            .map(|o| o.clamp(-MAX_LOG_TIME, MAX_LOG_TIME).exp())
            .collect()
    }

    /// Raw log-time head outputs (the quantity the MSE phase regresses).
    pub fn predict_log_times(&self, features: &Matrix) -> Vec<f64> {
        self.time_model.predict(features).into_vec()
    }

    /// Predicted reliabilities for an `N x d` feature batch.
    pub fn predict_reliability(&self, features: &Matrix) -> Vec<f64> {
        self.rel_model.predict(features).into_vec()
    }

    /// Records a time-model forward pass on `g` (for gradient injection).
    pub fn time_forward(&self, g: &mut Graph, features_node: NodeId) -> MlpPass {
        self.time_model.forward(g, features_node)
    }

    /// Records a reliability-model forward pass on `g`.
    pub fn rel_forward(&self, g: &mut Graph, features_node: NodeId) -> MlpPass {
        self.rel_model.forward(g, features_node)
    }

    /// Serializes both networks into one text document.
    pub fn to_document(&self) -> String {
        format!(
            "mfcp-cluster-predictor v1\n--time--\n{}--reliability--\n{}",
            mfcp_nn::persist::mlp_to_string(&self.time_model),
            mfcp_nn::persist::mlp_to_string(&self.rel_model)
        )
    }

    /// Parses a document produced by [`ClusterPredictor::to_document`].
    pub fn from_document(text: &str) -> Result<Self, mfcp_nn::persist::ModelFormatError> {
        let err = |m: &str| mfcp_nn::persist::ModelFormatError {
            message: m.to_string(),
        };
        let rest = text
            .strip_prefix("mfcp-cluster-predictor v1\n")
            .ok_or_else(|| err("bad cluster-predictor header"))?;
        let rest = rest
            .strip_prefix("--time--\n")
            .ok_or_else(|| err("missing --time-- section"))?;
        let (time_part, rel_part) = rest
            .split_once("--reliability--\n")
            .ok_or_else(|| err("missing --reliability-- section"))?;
        Ok(ClusterPredictor {
            time_model: mfcp_nn::persist::mlp_from_string(time_part)?,
            rel_model: mfcp_nn::persist::mlp_from_string(rel_part)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_heads_respect_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = ClusterPredictor::new(6, &[16, 16], &mut rng);
        let features = Matrix::from_fn(40, 6, |_, _| {
            use rand::Rng;
            rng.gen_range(-1.0..1.0)
        });
        for t in p.predict_times(&features) {
            assert!(t > 0.0, "times must be strictly positive");
        }
        for a in p.predict_reliability(&features) {
            assert!(
                (0.0..=1.0).contains(&a),
                "reliabilities must be probabilities"
            );
        }
    }

    #[test]
    fn batch_size_matches() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = ClusterPredictor::new(4, &[8], &mut rng);
        let features = Matrix::zeros(7, 4);
        assert_eq!(p.predict_times(&features).len(), 7);
        assert_eq!(p.predict_reliability(&features).len(), 7);
    }

    #[test]
    fn time_and_rel_models_are_independent() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = ClusterPredictor::new(4, &[8], &mut rng);
        // Different initializations (drawn sequentially from the RNG).
        assert_ne!(
            p.time_model.params()[0].as_slice(),
            p.rel_model.params()[0].as_slice()
        );
    }
}
