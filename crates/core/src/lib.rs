//! MFCP — Matching-Focused Cluster Performance Prediction.
//!
//! The paper's contribution: train the per-cluster performance predictors
//! *through* the downstream cluster–task matching so that they minimize
//! matching regret (Eq. 5/12) instead of MSE. This crate assembles the
//! substrates (`mfcp-nn`, `mfcp-optim`, `mfcp-platform`) into:
//!
//! * [`predictor`] — per-cluster execution-time (`m_ω`) and reliability
//!   (`m_φ`) networks with positivity/probability output heads.
//! * [`methods`] — the five evaluated systems: TAM (task-agnostic
//!   averages), TSM (two-stage MSE), UCB (robust confidence-bound
//!   matching), MFCP-AD (analytic KKT gradients) and MFCP-FG
//!   (zeroth-order forward gradients).
//! * [`train`] — the end-to-end MFCP training loop (paper Fig. 3 /
//!   Algorithm 2): splice one cluster's predictions into the measured
//!   matrices, solve the relaxed matching, backpropagate the regret
//!   gradient through the matching layer into that cluster's predictors.
//! * [`eval`] — the §4.1.3 evaluation harness: regret, reliability and
//!   cluster utilization over sampled test rounds, against the exact
//!   branch-and-bound ground truth.
//! * [`platform`] — a deployable orchestrator: match incoming rounds,
//!   buffer fresh measurements, retrain periodically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod methods;
pub mod platform;
pub mod predictor;
pub mod train;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::eval::{evaluate_method, EvalOptions, MethodScores};
    pub use crate::methods::{
        EnsembleUcbPredictor, MfcpPredictor, PerformancePredictor, TamPredictor, TsmPredictor,
        UcbPredictor,
    };
    pub use crate::platform::{ExchangePlatform, PlatformConfig};
    pub use crate::predictor::ClusterPredictor;
    pub use crate::train::{
        GradientMode, MfcpTrainConfig, RecoveryEvent, SolveCache, TrainReport, TsmTrainConfig,
    };
}
