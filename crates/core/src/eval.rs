//! The §4.1.3 evaluation harness: regret, reliability and utilization of
//! a method's matchings over sampled test rounds, against the exact
//! branch-and-bound ground truth.

use crate::methods::PerformancePredictor;
use crate::train::sample_round_indices;
use mfcp_linalg::Matrix;
use mfcp_optim::exact::{solve_exact, ExactOptions};
use mfcp_optim::rounding;
use mfcp_optim::solver::SolverOptions;
use mfcp_optim::{MatchingProblem, RelaxationParams, SpeedupCurve};
use mfcp_parallel::{par_map, ParallelConfig};
use mfcp_platform::dataset::PlatformDataset;
use mfcp_platform::execution::average_success_rate;
use mfcp_platform::metrics::MeanStd;
use rand::{Rng, SeedableRng};

/// Evaluation configuration.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Tasks per evaluation round (`N`).
    pub round_size: usize,
    /// Number of evaluation rounds to sample.
    pub rounds: usize,
    /// Reliability threshold `γ`.
    pub gamma: f64,
    /// Per-cluster speedup curves (empty → sequential).
    pub speedup: Vec<SpeedupCurve>,
    /// Relaxation parameters used when the method's matching is solved.
    pub relaxation: RelaxationParams,
    /// Algorithm 1 options used for the method's matching.
    pub solver: SolverOptions,
    /// When > 0, reliability is measured by averaging this many
    /// failure-injected execution simulations per round instead of taking
    /// the expectation (the paper's metric is the expectation; simulation
    /// mode exercises the full platform loop).
    pub executions_per_round: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            round_size: 5,
            rounds: 30,
            gamma: 0.85,
            speedup: Vec::new(),
            relaxation: RelaxationParams::default(),
            solver: SolverOptions::default(),
            executions_per_round: 0,
        }
    }
}

/// Aggregated scores for one method (the three paper metrics).
#[derive(Debug, Clone, Default)]
pub struct MethodScores {
    /// Makespan gap vs the ground-truth-optimal matching (paper Eq. 6,
    /// measured on true execution times).
    pub regret: MeanStd,
    /// Mean realized task success probability.
    pub reliability: MeanStd,
    /// Cluster utilization.
    pub utilization: MeanStd,
    /// Absolute makespan of the method's matchings (for scale context).
    pub makespan: MeanStd,
    /// Absolute makespan of the ground-truth-optimal matchings.
    pub optimal_makespan: MeanStd,
}

fn speedup_vec(opts: &EvalOptions, m: usize) -> Vec<SpeedupCurve> {
    if opts.speedup.is_empty() {
        vec![SpeedupCurve::None; m]
    } else {
        assert_eq!(opts.speedup.len(), m);
        opts.speedup.clone()
    }
}

/// Evaluates `method` on sampled rounds from `test`.
///
/// For each round the method sees only the task features; its predicted
/// matrices are matched (relax → round → repair → local search) and the
/// resulting assignment is scored against the *true* performance matrices,
/// with the optimal matching computed by exact branch-and-bound.
pub fn evaluate_method(
    method: &dyn PerformancePredictor,
    test: &PlatformDataset,
    opts: &EvalOptions,
    rng: &mut impl Rng,
) -> MethodScores {
    let m = test.clusters();
    let speedup = speedup_vec(opts, m);
    // Round task-sets are drawn sequentially (deterministic under a
    // seeded RNG), then the independent per-round solves fan out across
    // threads. Results are identical to the sequential evaluation.
    let rounds: Vec<(Vec<usize>, u64)> = (0..opts.rounds)
        .map(|_| {
            let idx = sample_round_indices(test.len(), opts.round_size, rng);
            let exec_seed: u64 = rng.gen();
            (idx, exec_seed)
        })
        .collect();
    let per_round: Vec<(f64, f64, f64, f64, f64)> =
        par_map(&ParallelConfig::default(), &rounds, |(idx, exec_seed)| {
            let n = idx.len();
            let features =
                Matrix::from_fn(n, test.features.cols(), |r, c| test.features[(idx[r], c)]);
            let t_true = Matrix::from_fn(m, n, |i, j| test.true_times[(i, idx[j])]);
            let a_true = Matrix::from_fn(m, n, |i, j| test.true_reliability[(i, idx[j])]);
            let problem_true = MatchingProblem::with_speedup(
                t_true.clone(),
                a_true.clone(),
                opts.gamma,
                speedup.clone(),
            );

            // The method's matching, from its own predictions. Times are
            // normalized by their mean before the relaxed solve so that
            // β, λ and ρ are scale-free; the argmin is unchanged in
            // spirit and the final discrete matching is evaluated in true
            // units anyway.
            let (t_hat, a_hat) = method.predict(&features);
            let t_scale = t_hat.mean().max(1e-9);
            let problem_pred = MatchingProblem::with_speedup(
                t_hat.scale(1.0 / t_scale),
                a_hat,
                opts.gamma,
                speedup.clone(),
            );
            let assignment =
                rounding::solve_discrete(&problem_pred, &opts.relaxation, &opts.solver);

            // Ground-truth optimum.
            let optimal = solve_exact(&problem_true, &ExactOptions::default());
            let span = assignment.makespan(&problem_true);
            let opt_span = optimal.assignment.makespan(&problem_true);
            let reliability = if opts.executions_per_round > 0 {
                let mut exec_rng = rand::rngs::StdRng::seed_from_u64(*exec_seed);
                average_success_rate(
                    &problem_true,
                    &assignment,
                    opts.executions_per_round,
                    &mut exec_rng,
                )
            } else {
                assignment.mean_reliability(&problem_true)
            };
            (
                (span - opt_span).max(0.0),
                reliability,
                assignment.utilization(&problem_true),
                span,
                opt_span,
            )
        });
    let mut scores = MethodScores::default();
    for (regret, reliability, utilization, span, opt_span) in per_round {
        scores.regret.push(regret);
        scores.reliability.push(reliability);
        scores.utilization.push(utilization);
        scores.makespan.push(span);
        scores.optimal_makespan.push(opt_span);
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::TamPredictor;
    use mfcp_platform::dataset::NoiseConfig;
    use mfcp_platform::embedding::FeatureEmbedder;
    use mfcp_platform::settings::{ClusterPool, Setting};
    use mfcp_platform::task::TaskGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(n: usize, seed: u64) -> PlatformDataset {
        let model = ClusterPool::standard().setting(Setting::A);
        let mut rng = StdRng::seed_from_u64(seed);
        PlatformDataset::generate(
            &model,
            &FeatureEmbedder::default_platform(),
            &TaskGenerator::default(),
            n,
            &NoiseConfig::default(),
            &mut rng,
        )
    }

    /// An oracle that predicts the truth exactly — its regret must be
    /// (near) zero, validating the whole evaluation plumbing.
    struct Oracle {
        test: PlatformDataset,
    }

    impl PerformancePredictor for Oracle {
        fn name(&self) -> String {
            "Oracle".into()
        }
        fn predict(&self, features: &Matrix) -> (Matrix, Matrix) {
            // Look the features up in the dataset by exact match.
            let m = self.test.clusters();
            let n = features.rows();
            let mut t = Matrix::zeros(m, n);
            let mut a = Matrix::zeros(m, n);
            for j in 0..n {
                let row = features.row(j);
                let orig = (0..self.test.len())
                    .find(|&k| self.test.features.row(k) == row)
                    .expect("oracle only sees test tasks");
                for i in 0..m {
                    t[(i, j)] = self.test.true_times[(i, orig)];
                    a[(i, j)] = self.test.true_reliability[(i, orig)];
                }
            }
            (t, a)
        }
    }

    #[test]
    fn oracle_has_near_zero_regret() {
        let test = dataset(30, 1);
        let oracle = Oracle { test: test.clone() };
        let opts = EvalOptions {
            rounds: 12,
            gamma: 0.8,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let scores = evaluate_method(&oracle, &test, &opts, &mut rng);
        // The oracle's relaxed+rounded+local-searched matching should be
        // optimal or within a few percent of it on every round.
        assert!(
            scores.regret.mean() < 0.05 * scores.optimal_makespan.mean(),
            "oracle regret too high: {} vs optimal makespan {}",
            scores.regret.mean(),
            scores.optimal_makespan.mean()
        );
        assert!(scores.utilization.mean() > 0.3);
    }

    #[test]
    fn tam_scores_are_sane_and_worse_than_oracle() {
        let test = dataset(30, 3);
        let oracle = Oracle { test: test.clone() };
        let tam = TamPredictor::fit(&test);
        let opts = EvalOptions {
            rounds: 12,
            gamma: 0.8,
            ..Default::default()
        };
        let scores_tam = evaluate_method(&tam, &test, &opts, &mut StdRng::seed_from_u64(4));
        let scores_oracle = evaluate_method(&oracle, &test, &opts, &mut StdRng::seed_from_u64(4));
        assert!(scores_tam.regret.mean() >= scores_oracle.regret.mean());
        assert!((0.0..=1.0).contains(&scores_tam.reliability.mean()));
        assert!((0.0..=1.0).contains(&scores_tam.utilization.mean()));
        assert_eq!(scores_tam.regret.count(), 12);
    }

    #[test]
    fn simulated_reliability_tracks_expectation() {
        let test = dataset(30, 8);
        let tam = TamPredictor::fit(&test);
        let expectation = evaluate_method(
            &tam,
            &test,
            &EvalOptions {
                rounds: 10,
                gamma: 0.8,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(11),
        );
        let simulated = evaluate_method(
            &tam,
            &test,
            &EvalOptions {
                rounds: 10,
                gamma: 0.8,
                executions_per_round: 400,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(11),
        );
        // Same matchings (same seed); simulated success rate converges to
        // the expectation by the LLN.
        assert_eq!(expectation.regret.mean(), simulated.regret.mean());
        assert!(
            (expectation.reliability.mean() - simulated.reliability.mean()).abs() < 0.02,
            "{} vs {}",
            expectation.reliability.mean(),
            simulated.reliability.mean()
        );
    }

    #[test]
    fn evaluation_deterministic_under_seed() {
        let test = dataset(25, 5);
        let tam = TamPredictor::fit(&test);
        let opts = EvalOptions {
            rounds: 6,
            gamma: 0.8,
            ..Default::default()
        };
        let a = evaluate_method(&tam, &test, &opts, &mut StdRng::seed_from_u64(9));
        let b = evaluate_method(&tam, &test, &opts, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.regret.mean(), b.regret.mean());
        assert_eq!(a.utilization.std(), b.utilization.std());
    }
}
