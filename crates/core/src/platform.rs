//! The deployed exchange platform: a continuously operating orchestrator
//! that matches incoming rounds with its current predictors, accumulates
//! fresh measurements in a bounded replay buffer, and periodically
//! retrains with the decision-focused loop.
//!
//! This is the operational loop the paper's Fig. 1 sketches: "the
//! platform builds cluster-specific predictors", matches user rounds, and
//! keeps learning as new clusters/tasks are profiled.

use crate::methods::{MfcpPredictor, PerformancePredictor};
use crate::train::{train_mfcp, MfcpTrainConfig};
use mfcp_linalg::Matrix;
use mfcp_optim::rounding::solve_discrete;
use mfcp_optim::{Assignment, MatchingProblem, SpeedupCurve};
use mfcp_platform::dataset::PlatformDataset;
use mfcp_platform::embedding::FeatureEmbedder;
use mfcp_platform::task::TaskSpec;

/// Configuration of a deployed [`ExchangePlatform`].
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Reliability threshold `γ` enforced at matching time.
    pub gamma: f64,
    /// Per-cluster speedup curves (empty → sequential execution).
    pub speedup: Vec<SpeedupCurve>,
    /// Training configuration (warm start + decision-focused phase).
    pub train: MfcpTrainConfig,
    /// Retrain after this many newly recorded measurements (0 = never
    /// retrain automatically).
    pub retrain_after: usize,
    /// Replay-buffer capacity in tasks (oldest measurements evicted).
    pub history_capacity: usize,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            gamma: 0.82,
            speedup: Vec::new(),
            train: MfcpTrainConfig::default(),
            retrain_after: 50,
            history_capacity: 400,
        }
    }
}

/// A running exchange platform instance.
pub struct ExchangePlatform {
    embedder: FeatureEmbedder,
    config: PlatformConfig,
    history: PlatformDataset,
    predictor: MfcpPredictor,
    fresh_since_training: usize,
    retrain_count: usize,
    seed: u64,
}

impl ExchangePlatform {
    /// Boots the platform from an initial profiled dataset: trains the
    /// predictors end-to-end before serving the first round.
    pub fn bootstrap(
        embedder: FeatureEmbedder,
        initial: PlatformDataset,
        mut config: PlatformConfig,
        seed: u64,
    ) -> Self {
        config.train.gamma = config.gamma;
        config.train.speedup = config.speedup.clone();
        let (predictor, _) = train_mfcp(&initial, &config.train, seed);
        ExchangePlatform {
            embedder,
            config,
            history: initial,
            predictor,
            fresh_since_training: 0,
            retrain_count: 0,
            seed,
        }
    }

    /// Number of clusters the platform manages.
    pub fn clusters(&self) -> usize {
        self.history.clusters()
    }

    /// Tasks currently in the replay buffer.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// How many times the platform has retrained since bootstrap.
    pub fn retrain_count(&self) -> usize {
        self.retrain_count
    }

    /// The current predictor (e.g. for persistence via
    /// [`MfcpPredictor::to_document`]).
    pub fn predictor(&self) -> &MfcpPredictor {
        &self.predictor
    }

    /// Matches a round of incoming tasks using the current predictors:
    /// embed → predict `(T̂, Â)` → relax → round → repair → local search.
    pub fn match_tasks(&self, tasks: &[TaskSpec]) -> Assignment {
        let features = self.embedder.embed_batch(tasks);
        self.match_features(&features)
    }

    /// Matches a round given pre-embedded features (`N x d`).
    pub fn match_features(&self, features: &Matrix) -> Assignment {
        let (t_hat, a_hat) = self.predictor.predict(features);
        let scale = t_hat.mean().max(1e-9);
        let speedup = if self.config.speedup.is_empty() {
            vec![SpeedupCurve::None; t_hat.rows()]
        } else {
            self.config.speedup.clone()
        };
        let problem = MatchingProblem::with_speedup(
            t_hat.scale(1.0 / scale),
            a_hat,
            self.config.gamma,
            speedup,
        );
        solve_discrete(
            &problem,
            &self.config.train.relaxation,
            &self.config.train.solver,
        )
    }

    /// Records freshly profiled measurements (tasks run on *every*
    /// cluster, as the paper's ground-truth collection does), bounding the
    /// buffer and retraining when due. Returns whether a retrain ran.
    pub fn record_measurements(&mut self, measurements: &PlatformDataset) -> bool {
        self.history = self
            .history
            .concat(measurements)
            .truncate_front(self.config.history_capacity);
        self.fresh_since_training += measurements.len();
        if self.config.retrain_after > 0 && self.fresh_since_training >= self.config.retrain_after {
            self.retrain();
            true
        } else {
            false
        }
    }

    /// Forces an immediate retrain on the current buffer.
    pub fn retrain(&mut self) {
        self.retrain_count += 1;
        let seed = self.seed.wrapping_add(self.retrain_count as u64);
        let (predictor, _) = train_mfcp(&self.history, &self.config.train, seed);
        self.predictor = predictor;
        self.fresh_since_training = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::TsmTrainConfig;
    use mfcp_platform::dataset::NoiseConfig;
    use mfcp_platform::settings::{ClusterPool, Setting};
    use mfcp_platform::task::TaskGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_config() -> PlatformConfig {
        PlatformConfig {
            gamma: 0.80,
            train: MfcpTrainConfig {
                warm_start: TsmTrainConfig {
                    hidden: vec![8],
                    epochs: 40,
                    ..Default::default()
                },
                rounds: 6,
                validate_every: 3,
                ..Default::default()
            },
            retrain_after: 20,
            history_capacity: 60,
            ..Default::default()
        }
    }

    fn profiled(n: usize, seed: u64) -> PlatformDataset {
        let model = ClusterPool::standard().setting(Setting::A);
        let mut rng = StdRng::seed_from_u64(seed);
        PlatformDataset::generate(
            &model,
            &FeatureEmbedder::bottlenecked_platform(),
            &TaskGenerator::default(),
            n,
            &NoiseConfig::default(),
            &mut rng,
        )
    }

    #[test]
    fn bootstrap_and_match() {
        let platform = ExchangePlatform::bootstrap(
            FeatureEmbedder::bottlenecked_platform(),
            profiled(40, 1),
            quick_config(),
            7,
        );
        assert_eq!(platform.clusters(), 3);
        let mut rng = StdRng::seed_from_u64(2);
        let tasks = TaskGenerator::default().sample_many(6, &mut rng);
        let assignment = platform.match_tasks(&tasks);
        assert_eq!(assignment.tasks(), 6);
        assert!(assignment.cluster_of.iter().all(|&c| c < 3));
    }

    #[test]
    fn retrains_after_enough_measurements() {
        let mut platform = ExchangePlatform::bootstrap(
            FeatureEmbedder::bottlenecked_platform(),
            profiled(40, 3),
            quick_config(),
            7,
        );
        assert_eq!(platform.retrain_count(), 0);
        // 12 fresh tasks: below the threshold of 20 — no retrain.
        assert!(!platform.record_measurements(&profiled(12, 4)));
        assert_eq!(platform.retrain_count(), 0);
        // 12 more: crosses the threshold.
        assert!(platform.record_measurements(&profiled(12, 5)));
        assert_eq!(platform.retrain_count(), 1);
        // Counter resets.
        assert!(!platform.record_measurements(&profiled(5, 6)));
    }

    #[test]
    fn history_capacity_enforced() {
        let mut platform = ExchangePlatform::bootstrap(
            FeatureEmbedder::bottlenecked_platform(),
            profiled(40, 8),
            PlatformConfig {
                retrain_after: 0, // manual retraining only
                history_capacity: 50,
                ..quick_config()
            },
            7,
        );
        platform.record_measurements(&profiled(30, 9));
        assert_eq!(platform.history_len(), 50, "buffer must stay bounded");
        assert_eq!(
            platform.retrain_count(),
            0,
            "retrain_after=0 disables auto retrain"
        );
    }

    #[test]
    fn matching_changes_after_retraining_on_shifted_data() {
        // Deterministic matcher before/after retraining on new data: the
        // predictor must actually be replaced.
        let mut platform = ExchangePlatform::bootstrap(
            FeatureEmbedder::bottlenecked_platform(),
            profiled(40, 10),
            quick_config(),
            7,
        );
        let before = platform.predictor().to_document();
        platform.record_measurements(&profiled(25, 11));
        let after = platform.predictor().to_document();
        assert_ne!(before, after, "retraining must update the predictor");
    }
}
