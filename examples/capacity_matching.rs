//! The capacity-constraint extension in action: matching with and without
//! per-cluster memory limits. Without limits, the matcher happily parks
//! big-activation jobs on small-memory clusters and pays the memory-wall
//! slowdown; with limits, those placements are forbidden outright and the
//! platform avoids the cliff.
//!
//! Run with: `cargo run --release --example capacity_matching`

use mfcp::optim::rounding::solve_discrete;
use mfcp::optim::{MatchingProblem, RelaxationParams, SolverOptions};
use mfcp::platform::metrics::MeanStd;
use mfcp::platform::settings::{ClusterPool, Setting};
use mfcp::platform::task::TaskGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Setting C has two small-memory FP32 clusters (24 and 16 units) next
    // to a roomier tensor-core cluster — memory pressure is common.
    let model = ClusterPool::standard().setting(Setting::C);
    println!("clusters and memory capacities:");
    for c in &model.clusters {
        println!("  - {:<18} {:>5.0} units", c.name, c.memory_capacity);
    }

    let generator = TaskGenerator::default();
    let mut rng = StdRng::seed_from_u64(17);
    let params = RelaxationParams::default();
    let opts = SolverOptions::default();

    let mut span_free = MeanStd::new();
    let mut span_cap = MeanStd::new();
    let mut overloads = 0usize;
    let mut infeasible_rounds = 0usize;
    let rounds = 15;
    for _ in 0..rounds {
        let tasks = generator.sample_many(12, &mut rng);
        let times = model.time_matrix(&tasks);
        let reliability = model.reliability_matrix(&tasks);

        // Unconstrained matching (the paper's formulation).
        let free_problem = MatchingProblem::new(times.clone(), reliability.clone(), 0.8);
        let free = solve_discrete(&free_problem, &params, &opts);

        // Capacity-constrained matching: jointly, a cluster's jobs may
        // use at most 80% of its accelerator memory (strict isolation,
        // no spilling tolerated).
        let cap_problem = MatchingProblem::new(times, reliability, 0.8)
            .with_capacity(model.capacity_constraint(&tasks, 0.8));
        let capped = solve_discrete(&cap_problem, &params, &opts);

        if !free.capacity_feasible(&cap_problem) {
            overloads += 1;
        }
        if !capped.capacity_feasible(&cap_problem) {
            // A round whose aggregate demand exceeds aggregate capacity
            // has no feasible matching at all; skip it in the averages.
            infeasible_rounds += 1;
            continue;
        }
        span_free.push(free.makespan(&free_problem));
        span_cap.push(capped.makespan(&cap_problem));
    }

    println!("\nover {rounds} rounds of 12 jobs:");
    println!("  unconstrained matching breached a memory limit in {overloads}/{rounds} rounds");
    println!("  rounds with no feasible matching at all: {infeasible_rounds}/{rounds}");
    println!("  makespan, unconstrained: {span_free}");
    println!("  makespan, capacity-aware: {span_cap}");
    println!(
        "\n(the capacity-aware matchings stay feasible by construction — the\n\
         barrier steers the relaxation and the pipeline repairs any residue;\n\
         their makespans stay competitive because the memory-wall slowdowns\n\
         the free matcher incurs are exactly what the limits forbid)"
    );
}
