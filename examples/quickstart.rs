//! Quickstart: build a tiny computing-resource-exchange platform, train an
//! MFCP predictor, and compare its matchings against the two-stage
//! baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use mfcp::core::eval::{evaluate_method, EvalOptions};
use mfcp::core::methods::PerformancePredictor;
use mfcp::core::train::{train_mfcp, train_tsm, GradientMode, MfcpTrainConfig, TsmTrainConfig};
use mfcp::platform::dataset::{NoiseConfig, PlatformDataset};
use mfcp::platform::embedding::FeatureEmbedder;
use mfcp::platform::settings::{ClusterPool, Setting};
use mfcp::platform::task::TaskGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. The platform manages a pool of heterogeneous third-party
    //    clusters; Setting A picks three of them (tensor-core lab, FP32
    //    render farm, commodity startup).
    let pool = ClusterPool::standard();
    let model = pool.setting(Setting::A);
    println!("clusters:");
    for c in &model.clusters {
        println!(
            "  - {} ({:?}, {:.0} TFLOP/s)",
            c.name, c.accel, c.throughput
        );
    }

    // 2. Measure a training workload on every cluster (runtimes carry
    //    measurement noise; reliability is an empirical frequency).
    let embedder = FeatureEmbedder::bottlenecked_platform();
    let mut rng = StdRng::seed_from_u64(7);
    let train = PlatformDataset::generate(
        &model,
        &embedder,
        &TaskGenerator::default(),
        100,
        &NoiseConfig::default(),
        &mut rng,
    );
    let test = PlatformDataset::generate(
        &model,
        &embedder,
        &TaskGenerator::default(),
        60,
        &NoiseConfig::default(),
        &mut rng,
    );
    println!(
        "\nmeasured {} training tasks, {} test tasks",
        train.len(),
        test.len()
    );

    // 3. Train the two-stage baseline (MSE) and MFCP (regret-trained via
    //    analytic KKT differentiation of the matching layer).
    let supervised = TsmTrainConfig {
        hidden: vec![8],
        epochs: 200,
        ..Default::default()
    };
    let tsm = train_tsm(&train, &supervised, 1);
    let cfg = MfcpTrainConfig {
        warm_start: supervised,
        rounds: 120,
        round_size: 5,
        lr: 5e-3,
        gamma: 0.82,
        mode: GradientMode::Analytic,
        ..Default::default()
    };
    let (mfcp, report) = train_mfcp(&train, &cfg, 1);
    println!(
        "MFCP trained for {} rounds (best snapshot at round {})",
        report.loss_history.len(),
        report.best_round
    );

    // 4. Evaluate both on unseen rounds of 5 tasks: regret vs the exact
    //    branch-and-bound optimum, realized reliability, utilization.
    let opts = EvalOptions {
        round_size: 5,
        rounds: 25,
        gamma: 0.82,
        ..Default::default()
    };
    println!(
        "\n{:<10} {:>10} {:>14} {:>14}",
        "method", "regret", "reliability", "utilization"
    );
    for method in [&tsm as &dyn PerformancePredictor, &mfcp] {
        let scores = evaluate_method(method, &test, &opts, &mut StdRng::seed_from_u64(99));
        println!(
            "{:<10} {:>10.3} {:>14.3} {:>14.3}",
            method.name(),
            scores.regret.mean(),
            scores.reliability.mean(),
            scores.utilization.mean()
        );
    }
}
