//! The differentiable-optimization machinery in isolation: solve a
//! relaxed matching, differentiate the optimum through its KKT system,
//! and verify the implicit gradients against both zeroth-order estimates
//! and finite differences — the two gradient engines behind MFCP-AD and
//! MFCP-FG.
//!
//! Run with: `cargo run --release --example differentiable_matching`
#![allow(clippy::needless_range_loop)]

use mfcp::optim::kkt::implicit_gradients;
use mfcp::optim::solver::{solve_relaxed, SolverOptions};
use mfcp::optim::zeroth::{estimate_gradient, ZerothOrderOptions};
use mfcp::optim::{MatchingProblem, RelaxationParams};
use mfcp_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let (m, n) = (3, 4);
    let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..2.5));
    let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.75..1.0));
    let problem = MatchingProblem::new(t, a, 0.8);
    let params = RelaxationParams::default();
    let tight = SolverOptions {
        max_iters: 20_000,
        tol: 1e-14,
        ..Default::default()
    };

    // Solve the relaxed matching (Algorithm 1 / mirror descent).
    let sol = solve_relaxed(&problem, &params, &tight);
    println!(
        "relaxed solve: {} iterations, objective {:.4}, converged={}",
        sol.iterations, sol.objective, sol.converged
    );

    // A linear probe loss L = <c, X*> and its gradient w.r.t. T.
    let c = Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));
    let kkt = implicit_gradients(&problem, &params, &sol.x, &c).expect("KKT solvable");

    // Zeroth-order estimate of the same gradient for cluster row 0.
    let theta: Vec<f64> = problem.times.row(0).to_vec();
    let zo = ZerothOrderOptions {
        delta: 0.02,
        samples: 512,
        ..Default::default()
    };
    let solve = |th: &[f64]| {
        let p = problem.with_time_row(0, th);
        solve_relaxed(&p, &params, &tight).x
    };
    let fg = estimate_gradient(&theta, &sol.x, &c, solve, &zo, &mut rng);

    // Finite differences as ground truth.
    println!(
        "\ndL/dt_0j:   {:>12} {:>12} {:>12}",
        "KKT (AD)", "zeroth (FG)", "finite diff"
    );
    let h = 1e-5;
    for j in 0..n {
        let mut tp = problem.clone();
        tp.times[(0, j)] += h;
        let mut tm = problem.clone();
        tm.times[(0, j)] -= h;
        let probe = |p: &MatchingProblem| {
            let s = solve_relaxed(p, &params, &tight);
            c.hadamard(&s.x).unwrap().sum()
        };
        let fd = (probe(&tp) - probe(&tm)) / (2.0 * h);
        println!(
            "  j={j}:      {:>12.5} {:>12.5} {:>12.5}",
            kkt.dl_dt[(0, j)],
            fg[j],
            fd
        );
    }
    println!(
        "\nKKT gradients match finite differences to ~5 digits; the zeroth-order\n\
         estimate tracks them up to the Theorem-3 bias/variance (shrink Δ and\n\
         grow S to tighten it). The matching layer is differentiable both ways."
    );
}
