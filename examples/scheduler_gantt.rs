//! Within-cluster scheduling in detail: ASCII Gantt charts of the
//! sequential (Eq. 3) and processor-sharing (Eq. 16) executions of the
//! same batch, plus the empirical ζ curve fitted from simulated
//! schedules against the analytic curve the matching layer uses.
//!
//! Run with: `cargo run --release --example scheduler_gantt`

use mfcp::optim::SpeedupCurve;
use mfcp::platform::scheduler::{
    fit_speedup, processor_sharing_schedule, sequential_schedule, Schedule,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn gantt(schedule: &Schedule, label: &str, width: usize) {
    println!("\n{label} (makespan {:.2} h):", schedule.makespan);
    let scale = width as f64 / schedule.makespan.max(1e-9);
    let mut entries = schedule.entries.clone();
    entries.sort_by_key(|e| e.task);
    for e in &entries {
        let start = (e.start * scale).round() as usize;
        let end = ((e.end * scale).round() as usize).max(start + 1);
        let mut bar = String::new();
        bar.push_str(&" ".repeat(start));
        bar.push_str(&"█".repeat(end - start));
        println!(
            "  task {:>2} |{bar:<width$}| {:>5.2} → {:>5.2}",
            e.task, e.start, e.end
        );
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let times: Vec<f64> = (0..6).map(|_| rng.gen_range(0.5..2.5)).collect();
    println!(
        "batch of 6 jobs, per-job times: {:?}",
        times
            .iter()
            .map(|t| (t * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    let curve = SpeedupCurve::paper_parallel();
    let seq = sequential_schedule(&times);
    let par = processor_sharing_schedule(&times, curve);
    gantt(&seq, "sequential execution", 48);
    gantt(&par, "processor sharing (ζ-curve service rate)", 48);
    println!(
        "\nsharing finishes {:.0}% sooner; jobs complete shortest-first.",
        100.0 * (1.0 - par.makespan / seq.makespan)
    );

    // Fit the empirical ζ from many random batches and compare.
    let mut batches = Vec::new();
    for k in 1..=8usize {
        for _ in 0..40 {
            batches.push((0..k).map(|_| rng.gen_range(0.5..2.5)).collect());
        }
    }
    let fits = fit_speedup(&batches, curve);
    println!("\nempirical ζ from simulated schedules vs the analytic model:");
    println!("{:>4} {:>18} {:>12}", "n", "fitted ζ", "model ζ(n)");
    for fit in fits {
        println!(
            "{:>4} {:>18} {:>12.3}",
            fit.batch_size,
            fit.zeta.to_string(),
            curve.eval(fit.batch_size as f64)
        );
    }
    println!("\n(the scalar ζ model of Eq. 16 is exact for homogeneous batches and a");
    println!(" tight approximation for mixed ones — see scheduler.rs tests)");
}
