//! The §3.4 parallel-execution scenario: clusters run several jobs
//! concurrently, so total time follows the speedup curve
//! `ζ(n) = 0.6 + 0.4·exp(-rate·(n-1))` and the matching objective becomes
//! non-convex. This example shows (1) how ζ changes the optimal matching
//! and (2) MFCP-FG training through the non-convex layer with
//! zeroth-order gradients.
//!
//! Run with: `cargo run --release --example parallel_sharing`

use mfcp::core::eval::{evaluate_method, EvalOptions};
use mfcp::core::methods::PerformancePredictor;
use mfcp::core::train::{train_mfcp, train_tsm, GradientMode, MfcpTrainConfig, TsmTrainConfig};
use mfcp::optim::exact::{solve_exact, ExactOptions};
use mfcp::optim::{MatchingProblem, SpeedupCurve};
use mfcp::platform::dataset::{NoiseConfig, PlatformDataset};
use mfcp::platform::embedding::FeatureEmbedder;
use mfcp::platform::settings::{ClusterPool, Setting};
use mfcp::platform::task::TaskGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let model = ClusterPool::standard().setting(Setting::A);
    let generator = TaskGenerator::default();
    let mut rng = StdRng::seed_from_u64(11);

    // ---- part 1: how the speedup curve reshapes the optimum ------------
    let tasks = generator.sample_many(8, &mut rng);
    let times = model.time_matrix(&tasks);
    let reliability = model.reliability_matrix(&tasks);
    let sequential = MatchingProblem::new(times.clone(), reliability.clone(), 0.8);
    let parallel = MatchingProblem::with_speedup(
        times,
        reliability,
        0.8,
        vec![SpeedupCurve::paper_parallel(); 3],
    );
    let opt_seq = solve_exact(&sequential, &ExactOptions::default()).assignment;
    let opt_par = solve_exact(&parallel, &ExactOptions::default()).assignment;
    println!(
        "sequential optimum: loads {:?}, makespan {:.2} h",
        opt_seq.loads(3),
        opt_seq.makespan(&sequential)
    );
    println!(
        "parallel  optimum: loads {:?}, makespan {:.2} h",
        opt_par.loads(3),
        opt_par.makespan(&parallel)
    );
    println!("(batching concentrates work: ζ rewards loading a cluster past one job)\n");

    // ---- part 2: MFCP-FG through the non-convex matching layer ---------
    let embedder = FeatureEmbedder::bottlenecked_platform();
    let train = PlatformDataset::generate(
        &model,
        &embedder,
        &generator,
        100,
        &NoiseConfig::default(),
        &mut rng,
    );
    let test = PlatformDataset::generate(
        &model,
        &embedder,
        &generator,
        60,
        &NoiseConfig::default(),
        &mut rng,
    );
    let supervised = TsmTrainConfig {
        hidden: vec![8],
        epochs: 200,
        ..Default::default()
    };
    let tsm = train_tsm(&train, &supervised, 3);
    let cfg = MfcpTrainConfig {
        warm_start: supervised,
        rounds: 100,
        round_size: 10,
        lr: 5e-3,
        gamma: 0.82,
        speedup: vec![SpeedupCurve::paper_parallel(); 3],
        mode: GradientMode::ForwardGradient(Default::default()),
        ..Default::default()
    };
    let (mfcp_fg, _) = train_mfcp(&train, &cfg, 3);

    let opts = EvalOptions {
        round_size: 10,
        rounds: 20,
        gamma: 0.82,
        speedup: vec![SpeedupCurve::paper_parallel(); 3],
        ..Default::default()
    };
    println!(
        "{:<10} {:>10} {:>14} {:>14}",
        "method", "regret", "reliability", "utilization"
    );
    for method in [&tsm as &dyn PerformancePredictor, &mfcp_fg] {
        let scores = evaluate_method(method, &test, &opts, &mut StdRng::seed_from_u64(5));
        println!(
            "{:<10} {:>10.3} {:>14.3} {:>14.3}",
            method.name(),
            scores.regret.mean(),
            scores.reliability.mean(),
            scores.utilization.mean()
        );
    }
}
