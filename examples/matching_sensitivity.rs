//! Interpreting a matching decision: materialize the full Jacobian
//! `∂X*/∂T̂` of one round's relaxed matching and report, per task, which
//! predictions its assignment is most sensitive to — the counterfactual
//! "what would have to be mispredicted to flip this placement".
//!
//! Run with: `cargo run --release --example matching_sensitivity`

use mfcp::optim::kkt::solution_jacobians;
use mfcp::optim::rounding::round_argmax;
use mfcp::optim::solver::{solve_relaxed, SolverOptions};
use mfcp::optim::{MatchingProblem, RelaxationParams};
use mfcp::platform::settings::{ClusterPool, Setting};
use mfcp::platform::task::TaskGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let model = ClusterPool::standard().setting(Setting::A);
    let mut rng = StdRng::seed_from_u64(5);
    let tasks = TaskGenerator::default().sample_many(5, &mut rng);
    let times = model.time_matrix(&tasks);
    let scale = times.mean();
    let problem = MatchingProblem::new(
        times.scale(1.0 / scale),
        model.reliability_matrix(&tasks),
        0.82,
    );
    let (m, n) = (problem.clusters(), problem.tasks());

    let params = RelaxationParams::default();
    let tight = SolverOptions {
        max_iters: 10_000,
        tol: 1e-13,
        ..Default::default()
    };
    let sol = solve_relaxed(&problem, &params, &tight);
    let assignment = round_argmax(&sol.x);
    println!("round of {n} tasks on {m} clusters; relaxed matching:");
    for j in 0..n {
        let probs: Vec<String> = (0..m).map(|i| format!("{:.2}", sol.x[(i, j)])).collect();
        println!(
            "  task {j}: [{}] → cluster {}",
            probs.join(", "),
            assignment.cluster_of[j]
        );
    }

    let jac = solution_jacobians(&problem, &params, &sol.x).expect("convex case");
    println!("\nper-task sensitivity: top prediction entries steering each placement");
    println!("(∂ x[chosen, task] / ∂ t̂[cluster, task'], scaled time units)\n");
    for j in 0..n {
        let chosen = assignment.cluster_of[j];
        let row = chosen * n + j;
        // Rank all (cluster, task) prediction entries by |sensitivity|.
        let mut entries: Vec<(usize, usize, f64)> = (0..m)
            .flat_map(|k| (0..n).map(move |l| (k, l)))
            .map(|(k, l)| (k, l, jac.dx_dt[(row, k * n + l)]))
            .collect();
        entries.sort_by(|a, b| b.2.abs().total_cmp(&a.2.abs()));
        let top: Vec<String> = entries
            .iter()
            .take(3)
            .map(|(k, l, s)| format!("t̂[{k},{l}] ({s:+.2})"))
            .collect();
        println!("  task {j} (on cluster {chosen}): {}", top.join(", "));
    }
    println!(
        "\nreading: a negative entry on its own column means \"if that cluster\n\
         were predicted slower, this task's mass there would drop\"; entries\n\
         on *other* tasks' columns expose the makespan coupling — the joint\n\
         interaction the paper argues two-stage prediction ignores."
    );
}
