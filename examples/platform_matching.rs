//! A day on the exchange platform: repeatedly match incoming rounds of
//! deep-learning jobs to clusters and simulate their execution with
//! failure injection, comparing an oracle scheduler against a
//! task-agnostic one.
//!
//! Demonstrates the `mfcp-optim` matching layer and the `mfcp-platform`
//! execution simulator directly, without any learned predictors.
//!
//! Run with: `cargo run --release --example platform_matching`

use mfcp::optim::exact::{solve_exact, ExactOptions};
use mfcp::optim::rounding::solve_discrete;
use mfcp::optim::{MatchingProblem, RelaxationParams, SolverOptions};
use mfcp::platform::execution::simulate_execution;
use mfcp::platform::metrics::MeanStd;
use mfcp::platform::settings::{ClusterPool, Setting};
use mfcp::platform::task::TaskGenerator;
use mfcp_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let model = ClusterPool::standard().setting(Setting::B);
    let generator = TaskGenerator::default();
    let mut rng = StdRng::seed_from_u64(2024);
    let gamma = 0.85;
    let rounds = 12;
    let tasks_per_round = 8;

    let mut span_opt = MeanStd::new();
    let mut span_naive = MeanStd::new();
    let mut success_opt = MeanStd::new();
    let mut success_naive = MeanStd::new();

    println!("simulating {rounds} scheduling rounds of {tasks_per_round} jobs each\n");
    println!(
        "{:>5} {:>12} {:>12} {:>10} {:>10}",
        "round", "opt span", "naive span", "opt ok", "naive ok"
    );
    for round in 0..rounds {
        let tasks = generator.sample_many(tasks_per_round, &mut rng);
        let times = model.time_matrix(&tasks);
        let reliability = model.reliability_matrix(&tasks);
        let problem = MatchingProblem::new(times.clone(), reliability, gamma);

        // Optimal matching: exact branch-and-bound on the true matrices
        // (what a scheduler with perfect information would do). The
        // relaxed pipeline (`solve_discrete`) would give nearly the same
        // answer — see the `exact_vs_pipeline` bench.
        let optimal = solve_exact(&problem, &ExactOptions::default()).assignment;

        // Naive scheduler: every job goes to the cluster with the best
        // *average* time, ignoring per-task structure.
        let mean_times: Vec<f64> = (0..problem.clusters())
            .map(|i| times.row(i).iter().sum::<f64>() / tasks_per_round as f64)
            .collect();
        let best_avg = mean_times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        let naive_matrix =
            Matrix::from_fn(problem.clusters(), tasks_per_round, |i, _| mean_times[i]);
        let naive_problem = MatchingProblem::new(naive_matrix, problem.reliability.clone(), gamma);
        let naive = solve_discrete(
            &naive_problem,
            &RelaxationParams::default(),
            &SolverOptions::default(),
        );
        // A fully average-driven scheduler degenerates toward cluster
        // `best_avg`; the barrier and rounding may still spread a little.
        let _ = best_avg;

        let exec_opt = simulate_execution(&problem, &optimal, &mut rng);
        let exec_naive = simulate_execution(&problem, &naive, &mut rng);
        span_opt.push(exec_opt.makespan);
        span_naive.push(exec_naive.makespan);
        success_opt.push(exec_opt.success_rate);
        success_naive.push(exec_naive.success_rate);
        println!(
            "{:>5} {:>12.2} {:>12.2} {:>9.0}% {:>9.0}%",
            round,
            exec_opt.makespan,
            exec_naive.makespan,
            100.0 * exec_opt.success_rate,
            100.0 * exec_naive.success_rate
        );
    }

    println!("\nmakespan:  optimal {span_opt}  vs naive {span_naive}");
    println!("success:   optimal {success_opt}  vs naive {success_naive}");
    println!(
        "\ninformed matching cuts the makespan by {:.0}% on this workload",
        100.0 * (1.0 - span_opt.mean() / span_naive.mean())
    );
}
