//! A deployed exchange platform operating continuously: bootstrap from an
//! initial profiling campaign, then alternate serving matching rounds,
//! executing them (with failure injection), profiling fresh tasks, and
//! periodically retraining the decision-focused predictors.
//!
//! Run with: `cargo run --release --example online_platform`

use mfcp::core::platform::{ExchangePlatform, PlatformConfig};
use mfcp::core::train::{MfcpTrainConfig, TsmTrainConfig};
use mfcp::optim::MatchingProblem;
use mfcp::platform::dataset::{NoiseConfig, PlatformDataset};
use mfcp::platform::embedding::FeatureEmbedder;
use mfcp::platform::execution::simulate_execution;
use mfcp::platform::metrics::MeanStd;
use mfcp::platform::settings::{ClusterPool, Setting};
use mfcp::platform::task::TaskGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let model = ClusterPool::standard().setting(Setting::A);
    let embedder = FeatureEmbedder::bottlenecked_platform();
    let generator = TaskGenerator::default();
    let noise = NoiseConfig::default();
    let mut rng = StdRng::seed_from_u64(99);

    // Initial profiling campaign: 80 tasks measured on every cluster.
    let initial = PlatformDataset::generate(&model, &embedder, &generator, 80, &noise, &mut rng);
    println!(
        "bootstrapping platform from {} profiled tasks...",
        initial.len()
    );
    let config = PlatformConfig {
        gamma: 0.82,
        train: MfcpTrainConfig {
            warm_start: TsmTrainConfig {
                hidden: vec![8],
                epochs: 150,
                ..Default::default()
            },
            rounds: 60,
            lr: 5e-3,
            ..Default::default()
        },
        retrain_after: 30,
        history_capacity: 200,
        ..Default::default()
    };
    let mut platform = ExchangePlatform::bootstrap(embedder.clone(), initial, config, 7);

    let mut makespans = MeanStd::new();
    let mut success = MeanStd::new();
    println!("\nserving 20 rounds of 6 jobs each:");
    println!(
        "{:>6} {:>10} {:>9} {:>10} {:>9}",
        "round", "makespan", "success", "history", "retrains"
    );
    for round in 0..20 {
        // A user submits a round of jobs; the platform matches it.
        let tasks = generator.sample_many(6, &mut rng);
        let assignment = platform.match_tasks(&tasks);

        // The jobs execute on the true platform (failures injected).
        let truth = MatchingProblem::new(
            model.time_matrix(&tasks),
            model.reliability_matrix(&tasks),
            0.82,
        );
        let report = simulate_execution(&truth, &assignment, &mut rng);
        makespans.push(report.makespan);
        success.push(report.success_rate);

        // Ops also profiles a few fresh tasks on all clusters; every
        // `retrain_after` of those triggers a decision-focused retrain.
        let fresh = PlatformDataset::generate(&model, &embedder, &generator, 8, &noise, &mut rng);
        platform.record_measurements(&fresh);

        println!(
            "{:>6} {:>10.2} {:>8.0}% {:>10} {:>9}",
            round,
            report.makespan,
            100.0 * report.success_rate,
            platform.history_len(),
            platform.retrain_count()
        );
    }
    println!("\nover 20 rounds: makespan {makespans}, success rate {success}");
    println!(
        "replay buffer bounded at {} tasks; {} retrains ran in-line",
        platform.history_len(),
        platform.retrain_count()
    );
}
