//! Cross-crate persistence round trips: a trained model saved to disk and
//! reloaded must make byte-identical predictions and matchings, and a
//! dataset archived as a CSV trace must evaluate identically.

use mfcp::core::eval::{evaluate_method, EvalOptions};
use mfcp::core::methods::{MfcpPredictor, TsmPredictor};
use mfcp::core::train::{train_mfcp, train_tsm, GradientMode, MfcpTrainConfig, TsmTrainConfig};
use mfcp::platform::dataset::{NoiseConfig, PlatformDataset};
use mfcp::platform::embedding::FeatureEmbedder;
use mfcp::platform::settings::{ClusterPool, Setting};
use mfcp::platform::task::TaskGenerator;
use mfcp::platform::trace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn datasets(seed: u64) -> (PlatformDataset, PlatformDataset) {
    let model = ClusterPool::standard().setting(Setting::A);
    let embedder = FeatureEmbedder::bottlenecked_platform();
    let mut rng = StdRng::seed_from_u64(seed);
    let train = PlatformDataset::generate(
        &model,
        &embedder,
        &TaskGenerator::default(),
        50,
        &NoiseConfig::default(),
        &mut rng,
    );
    let test = PlatformDataset::generate(
        &model,
        &embedder,
        &TaskGenerator::default(),
        25,
        &NoiseConfig::default(),
        &mut rng,
    );
    (train, test)
}

fn quick_supervised() -> TsmTrainConfig {
    TsmTrainConfig {
        hidden: vec![8],
        epochs: 60,
        ..Default::default()
    }
}

#[test]
fn trained_tsm_survives_disk_round_trip() {
    let (train, test) = datasets(1);
    let tsm = train_tsm(&train, &quick_supervised(), 2);

    let dir = std::env::temp_dir().join("mfcp_persistence_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tsm.txt");
    std::fs::write(&path, tsm.to_document()).unwrap();
    let loaded = TsmPredictor::from_document(&std::fs::read_to_string(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();

    let opts = EvalOptions {
        rounds: 6,
        gamma: 0.80,
        ..Default::default()
    };
    let a = evaluate_method(&tsm, &test, &opts, &mut StdRng::seed_from_u64(3));
    let b = evaluate_method(&loaded, &test, &opts, &mut StdRng::seed_from_u64(3));
    assert_eq!(a.regret.mean(), b.regret.mean());
    assert_eq!(a.utilization.mean(), b.utilization.mean());
}

#[test]
fn trained_mfcp_survives_disk_round_trip() {
    let (train, test) = datasets(5);
    let cfg = MfcpTrainConfig {
        warm_start: quick_supervised(),
        rounds: 8,
        gamma: 0.80,
        mode: GradientMode::Analytic,
        validate_every: 4,
        ..Default::default()
    };
    let (mfcp, _) = train_mfcp(&train, &cfg, 7);
    let loaded = MfcpPredictor::from_document(&mfcp.to_document()).unwrap();
    assert_eq!(loaded.variant, "MFCP-AD");

    let opts = EvalOptions {
        rounds: 5,
        gamma: 0.80,
        ..Default::default()
    };
    let a = evaluate_method(&mfcp, &test, &opts, &mut StdRng::seed_from_u64(9));
    let b = evaluate_method(&loaded, &test, &opts, &mut StdRng::seed_from_u64(9));
    assert_eq!(a.regret.mean(), b.regret.mean());
}

#[test]
fn archived_trace_evaluates_identically() {
    let (train, test) = datasets(11);
    let embedder = FeatureEmbedder::bottlenecked_platform();
    let restored = trace::from_csv(&trace::to_csv(&test), &embedder).unwrap();

    let tsm = train_tsm(&train, &quick_supervised(), 13);
    let opts = EvalOptions {
        rounds: 6,
        gamma: 0.80,
        ..Default::default()
    };
    let original = evaluate_method(&tsm, &test, &opts, &mut StdRng::seed_from_u64(17));
    let reloaded = evaluate_method(&tsm, &restored, &opts, &mut StdRng::seed_from_u64(17));
    assert_eq!(original.regret.mean(), reloaded.regret.mean());
    assert_eq!(original.reliability.mean(), reloaded.reliability.mean());
}

#[test]
fn model_documents_are_versioned_and_distinguishable() {
    let (train, _) = datasets(19);
    let tsm = train_tsm(&train, &quick_supervised(), 21);
    let doc = tsm.to_document();
    assert!(doc.starts_with("mfcp-tsm v1"));
    // A TSM document must not parse as an MFCP one and vice versa.
    assert!(MfcpPredictor::from_document(&doc).is_err());
    let mfcp_doc = MfcpPredictor {
        predictors: tsm.predictors.clone(),
        time_scale: tsm.time_scale,
        variant: "MFCP-FG".into(),
    }
    .to_document();
    assert!(mfcp_doc.starts_with("mfcp-dfl v1"));
    assert!(TsmPredictor::from_document(&mfcp_doc).is_err());
}
