//! Matching-quality integration tests: the relaxed pipeline against the
//! exact solvers across instance families, including property-based
//! sweeps.

use mfcp::optim::exact::{greedy_lpt, solve_brute_force, solve_exact, ExactOptions};
use mfcp::optim::rounding::solve_discrete;
use mfcp::optim::solver::SolverOptions;
use mfcp::optim::{Assignment, MatchingProblem, RelaxationParams, SpeedupCurve};
use mfcp_linalg::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_problem(seed: u64, m: usize, n: usize, gamma: f64, parallel: bool) -> MatchingProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..3.0));
    let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.7..1.0));
    let speedup = if parallel {
        vec![SpeedupCurve::paper_parallel(); m]
    } else {
        vec![SpeedupCurve::None; m]
    };
    MatchingProblem::with_speedup(t, a, gamma, speedup)
}

#[test]
fn relaxed_pipeline_close_to_optimal() {
    // Relax → round → repair → local search should land within 10% of the
    // brute-force optimum on most small instances (and never be wildly
    // off on any).
    let mut total_ratio = 0.0;
    let mut count = 0;
    for seed in 0..12 {
        let problem = random_problem(seed, 3, 6, 0.78, false);
        let Some(opt) = solve_brute_force(&problem) else {
            continue;
        };
        let asg = solve_discrete(
            &problem,
            &RelaxationParams::default(),
            &SolverOptions::default(),
        );
        let ratio = asg.makespan(&problem) / opt.makespan(&problem);
        assert!(ratio < 1.5, "seed {seed}: pipeline ratio {ratio}");
        total_ratio += ratio;
        count += 1;
    }
    assert!(count >= 8);
    let avg = total_ratio / count as f64;
    assert!(avg < 1.1, "average pipeline/optimal ratio {avg}");
}

#[test]
fn exact_beats_or_matches_greedy_everywhere() {
    for seed in 50..60 {
        let problem = random_problem(seed, 3, 8, 0.0, false);
        let exact = solve_exact(&problem, &ExactOptions::default());
        let greedy = greedy_lpt(&problem);
        assert!(
            exact.assignment.makespan(&problem) <= greedy.makespan(&problem) + 1e-9,
            "seed {seed}"
        );
    }
}

#[test]
fn parallel_speedup_never_increases_makespan() {
    // For any fixed assignment, enabling the speedup curve can only lower
    // (or keep) each cluster's completion time.
    let mut rng = StdRng::seed_from_u64(77);
    for seed in 0..10 {
        let seq = random_problem(seed, 3, 8, 0.0, false);
        let par = MatchingProblem::with_speedup(
            seq.times.clone(),
            seq.reliability.clone(),
            seq.gamma,
            vec![SpeedupCurve::paper_parallel(); 3],
        );
        let asg = Assignment::new((0..8).map(|_| rng.gen_range(0..3)).collect());
        assert!(asg.makespan(&par) <= asg.makespan(&seq) + 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_pipeline_assignment_is_valid(seed in 0u64..5000, n in 2usize..8) {
        let problem = random_problem(seed, 3, n, 0.75, false);
        let asg = solve_discrete(
            &problem,
            &RelaxationParams::default(),
            &SolverOptions { max_iters: 150, ..Default::default() },
        );
        prop_assert_eq!(asg.tasks(), n);
        prop_assert!(asg.cluster_of.iter().all(|&c| c < 3));
        // Makespan equals the max cluster time by construction.
        let times = asg.cluster_times(&problem);
        let max = times.iter().cloned().fold(0.0, f64::max);
        prop_assert!((asg.makespan(&problem) - max).abs() < 1e-12);
    }

    #[test]
    fn prop_exact_is_lower_bound(seed in 0u64..2000) {
        // The exact solver's feasible makespan lower-bounds any feasible
        // assignment's makespan.
        let problem = random_problem(seed, 3, 5, 0.75, false);
        let exact = solve_exact(&problem, &ExactOptions::default());
        if exact.feasible {
            let pipeline = solve_discrete(
                &problem,
                &RelaxationParams::default(),
                &SolverOptions { max_iters: 150, ..Default::default() },
            );
            if pipeline.is_feasible(&problem) {
                prop_assert!(
                    exact.assignment.makespan(&problem) <= pipeline.makespan(&problem) + 1e-9
                );
            }
        }
    }
}
