//! Property-based gradient checking of the autodiff engine: random
//! compositions of unary/binary ops must match central differences.

use mfcp_autodiff::{gradcheck, Graph, NodeId};
use mfcp_linalg::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The unary ops safe to chain on arbitrary bounded inputs.
#[derive(Debug, Clone, Copy)]
enum UnaryOp {
    Tanh,
    Sigmoid,
    LeakyRelu,
    Softplus,
    MulScalar,
    AddScalar,
    Huber,
}

const OPS: [UnaryOp; 7] = [
    UnaryOp::Tanh,
    UnaryOp::Sigmoid,
    UnaryOp::LeakyRelu,
    UnaryOp::Softplus,
    UnaryOp::MulScalar,
    UnaryOp::AddScalar,
    UnaryOp::Huber,
];

fn apply(op: UnaryOp, g: &mut Graph, x: NodeId) -> NodeId {
    match op {
        UnaryOp::Tanh => g.tanh(x),
        UnaryOp::Sigmoid => g.sigmoid(x),
        UnaryOp::LeakyRelu => g.leaky_relu(x, 0.1),
        UnaryOp::Softplus => g.softplus_scaled(x, 1.3),
        UnaryOp::MulScalar => g.mul_scalar(x, 0.7),
        UnaryOp::AddScalar => g.add_scalar(x, 0.2),
        UnaryOp::Huber => g.huber(x, 0.8),
    }
}

/// Builds loss = mean(chain(x) ⊙ chain2(x)) for a random op chain.
fn build(ops: &[UnaryOp], x: &Matrix) -> (Graph, NodeId, NodeId) {
    let mut g = Graph::new();
    let xi = g.input(x.clone());
    let mut h = xi;
    for &op in ops {
        h = apply(op, &mut g, h);
    }
    // A second branch from the same input exercises adjoint accumulation.
    let t = g.tanh(xi);
    let prod = g.mul(h, t);
    let loss = g.mean(prod);
    (g, xi, loss)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_random_chain_gradients_match(
        seed in 0u64..100_000,
        depth in 1usize..6,
        rows in 1usize..4,
        cols in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ops: Vec<UnaryOp> = (0..depth)
            .map(|_| OPS[rng.gen_range(0..OPS.len())])
            .collect();
        // Keep inputs away from the ReLU/Huber kinks so central
        // differences are valid.
        let x = Matrix::from_fn(rows, cols, |_, _| {
            let mut v: f64 = rng.gen_range(-1.2..1.2);
            for bad in [0.0f64] {
                if (v - bad).abs() < 0.05 {
                    v += 0.1;
                }
            }
            v
        });

        let (mut g, xi, loss) = build(&ops, &x);
        g.backward(loss);
        let analytic = g.grad(xi).unwrap().clone();
        let numeric = gradcheck::finite_diff(
            &x,
            |m| {
                let (g, _, loss) = build(&ops, m);
                g.value(loss)[(0, 0)]
            },
            1e-6,
        );
        let err = gradcheck::relative_error(&analytic, &numeric);
        prop_assert!(err < 1e-5, "ops {ops:?}: relative error {err}");
    }

    #[test]
    fn prop_matmul_chain_gradients_match(
        seed in 0u64..100_000,
        m in 1usize..4,
        k in 1usize..4,
        n in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a0 = Matrix::from_fn(m, k, |_, _| rng.gen_range(-1.0..1.0));
        let b0 = Matrix::from_fn(k, n, |_, _| rng.gen_range(-1.0..1.0));
        let build = |a: &Matrix, b: &Matrix| {
            let mut g = Graph::new();
            let ai = g.input(a.clone());
            let bi = g.input(b.clone());
            let p = g.matmul(ai, bi);
            let t = g.tanh(p);
            let loss = g.mean(t);
            (g, ai, bi, loss)
        };
        let (mut g, ai, _bi, loss) = build(&a0, &b0);
        g.backward(loss);
        let analytic_a = g.grad(ai).unwrap().clone();
        let numeric_a = gradcheck::finite_diff(
            &a0,
            |a| {
                let (g, _, _, loss) = build(a, &b0);
                g.value(loss)[(0, 0)]
            },
            1e-6,
        );
        prop_assert!(gradcheck::relative_error(&analytic_a, &numeric_a) < 1e-5);
    }
}
