//! Integration tests for the per-cluster capacity-constraint extension:
//! barrier gradients, solver behaviour, exact search, and the rounding
//! pipeline must all respect the limits.

use mfcp::optim::exact::{solve_brute_force, solve_exact, ExactOptions};
use mfcp::optim::objective::{self, RelaxationParams};
use mfcp::optim::problem::CapacityConstraint;
use mfcp::optim::rounding::solve_discrete;
use mfcp::optim::solver::{solve_relaxed, SolverOptions};
use mfcp::optim::{Assignment, MatchingProblem};
use mfcp_autodiff::gradcheck;
use mfcp_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn capacitated_problem(seed: u64, m: usize, n: usize, tightness: f64) -> MatchingProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..2.5));
    let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.75..1.0));
    let usage = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..1.5));
    // Limits sized so roughly `tightness` of the total usage fits per
    // cluster — tight enough to matter, loose enough to stay feasible.
    let per_cluster: f64 = usage.mean() * n as f64 / m as f64;
    let limits = vec![per_cluster * tightness; m];
    MatchingProblem::new(t, a, 0.7).with_capacity(CapacityConstraint::new(usage, limits))
}

#[test]
fn capacity_gradient_matches_finite_differences() {
    let problem = capacitated_problem(1, 3, 5, 1.6);
    let params = RelaxationParams::default();
    let mut rng = StdRng::seed_from_u64(2);
    // A strictly interior x with columns on the simplex.
    let mut x = Matrix::from_fn(3, 5, |_, _| rng.gen_range(0.1..1.0));
    for j in 0..5 {
        let s: f64 = (0..3).map(|i| x[(i, j)]).sum();
        for i in 0..3 {
            x[(i, j)] /= s;
        }
    }
    let analytic = objective::grad_x(&problem, &params, &x);
    gradcheck::assert_gradients_close(
        &x,
        |xm| objective::value(&problem, &params, xm),
        &analytic,
        1e-6,
        1e-6,
    );
    // The capacity barrier must actually contribute.
    assert!(objective::capacity_barrier_value(&problem, &params, &x) != 0.0);
}

#[test]
fn solver_steers_away_from_saturated_clusters() {
    // One cluster is fastest for every task but can only hold ~2 of 6
    // units of work; the barrier must spill mass onto the slower ones.
    let t = Matrix::from_rows(&[
        &[1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
        &[1.5, 1.5, 1.5, 1.5, 1.5, 1.5],
        &[1.5, 1.5, 1.5, 1.5, 1.5, 1.5],
    ]);
    let a = Matrix::filled(3, 6, 0.95);
    let usage = Matrix::filled(3, 6, 1.0);
    let limits = vec![2.0, 6.0, 6.0];
    let problem =
        MatchingProblem::new(t, a, 0.5).with_capacity(CapacityConstraint::new(usage, limits));
    let params = RelaxationParams {
        lambda: 0.1,
        ..Default::default()
    };
    let sol = solve_relaxed(&problem, &params, &SolverOptions::default());
    let cap = problem.capacity.as_ref().unwrap();
    let mass0: f64 = (0..6).map(|j| sol.x[(0, j)]).sum();
    assert!(
        mass0 < 3.0,
        "fast cluster must not be loaded past its capacity region, got {mass0}"
    );
    assert!(
        cap.slack(&sol.x, 0) > -0.05,
        "relaxed solution nearly respects the limit"
    );
    // Without the capacity constraint the fast cluster takes much more.
    let unconstrained =
        MatchingProblem::new(problem.times.clone(), problem.reliability.clone(), 0.5);
    let free = solve_relaxed(&unconstrained, &params, &SolverOptions::default());
    let free_mass0: f64 = (0..6).map(|j| free.x[(0, j)]).sum();
    assert!(free_mass0 > mass0 + 0.5);
}

#[test]
fn pipeline_produces_capacity_feasible_matchings() {
    for seed in 0..8 {
        let problem = capacitated_problem(seed, 3, 6, 1.8);
        let asg = solve_discrete(
            &problem,
            &RelaxationParams::default(),
            &SolverOptions::default(),
        );
        assert!(
            asg.capacity_feasible(&problem),
            "seed {seed}: pipeline exceeded a capacity limit"
        );
    }
}

#[test]
fn exact_matches_brute_force_with_capacity() {
    for seed in 20..28 {
        let problem = capacitated_problem(seed, 3, 6, 1.8);
        let bb = solve_exact(&problem, &ExactOptions::default());
        let bf = solve_brute_force(&problem);
        match bf {
            Some(opt) => {
                assert!(bb.feasible, "seed {seed}");
                assert!(bb.assignment.capacity_feasible(&problem), "seed {seed}");
                assert!(
                    (bb.assignment.makespan(&problem) - opt.makespan(&problem)).abs() < 1e-9,
                    "seed {seed}: {} vs {}",
                    bb.assignment.makespan(&problem),
                    opt.makespan(&problem)
                );
            }
            None => assert!(!bb.feasible, "seed {seed}"),
        }
    }
}

#[test]
fn infeasible_capacity_detected() {
    // Total usage exceeds total capacity: no feasible assignment exists.
    let t = Matrix::filled(2, 4, 1.0);
    let a = Matrix::filled(2, 4, 0.95);
    let usage = Matrix::filled(2, 4, 1.0);
    let limits = vec![1.0, 1.0]; // 2 units of room for 4 units of work
    let problem =
        MatchingProblem::new(t, a, 0.0).with_capacity(CapacityConstraint::new(usage, limits));
    assert!(solve_brute_force(&problem).is_none());
    let bb = solve_exact(&problem, &ExactOptions::default());
    assert!(!bb.feasible);
    let asg = Assignment::new(vec![0, 0, 1, 1]);
    assert!(!asg.capacity_feasible(&problem));
}

#[test]
fn capacity_implicit_gradients_match_finite_differences() {
    // MFCP-AD through a capacity-constrained matching layer.
    use mfcp::optim::kkt::implicit_gradients;
    let problem = capacitated_problem(31, 3, 4, 1.5);
    let params = RelaxationParams {
        rho: 0.05,
        lambda: 0.08,
        beta: 3.0,
        ..Default::default()
    };
    let tight = SolverOptions {
        max_iters: 20_000,
        lr: 0.5,
        tol: 1e-14,
        ..Default::default()
    };
    let sol = solve_relaxed(&problem, &params, &tight);
    let mut rng = StdRng::seed_from_u64(32);
    let c = Matrix::from_fn(3, 4, |_, _| rng.gen_range(-1.0..1.0));
    let grads = implicit_gradients(&problem, &params, &sol.x, &c).unwrap();
    let probe = |p: &MatchingProblem| {
        let s = solve_relaxed(p, &params, &tight);
        c.hadamard(&s.x).unwrap().sum()
    };
    let h = 1e-5;
    for &(i, j) in &[(0usize, 1usize), (2, 3)] {
        let mut tp = problem.clone();
        tp.times[(i, j)] += h;
        let mut tm = problem.clone();
        tm.times[(i, j)] -= h;
        let numeric = (probe(&tp) - probe(&tm)) / (2.0 * h);
        let analytic = grads.dl_dt[(i, j)];
        assert!(
            (analytic - numeric).abs() < 5e-3 * (1.0 + numeric.abs()),
            "dT[{i},{j}]: analytic {analytic} vs numeric {numeric}"
        );
    }
}
