//! Larger-scale stress tests (ignored by default; run with
//! `cargo test --release -- --ignored` or as part of the final sweep).

use mfcp::core::eval::{evaluate_method, EvalOptions};
use mfcp::core::methods::TamPredictor;
use mfcp::core::train::{train_mfcp, train_tsm, GradientMode, MfcpTrainConfig, TsmTrainConfig};
use mfcp::optim::exact::{solve_exact, ExactOptions};
use mfcp::optim::rounding::solve_discrete;
use mfcp::optim::solver::{solve_relaxed, SolverOptions};
use mfcp::optim::{MatchingProblem, RelaxationParams};
use mfcp::platform::dataset::{NoiseConfig, PlatformDataset};
use mfcp::platform::embedding::FeatureEmbedder;
use mfcp::platform::settings::ClusterPool;
use mfcp::platform::task::TaskGenerator;
use mfcp_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
#[ignore = "stress test: ~1 min in release"]
fn five_cluster_forty_task_pipeline() {
    // M = 5 clusters from the pool, N = 40 tasks per round: well past the
    // paper's largest configuration.
    let pool = ClusterPool::standard();
    let model = pool.select(&[0, 1, 2, 3, 7]);
    let embedder = FeatureEmbedder::bottlenecked_platform();
    let mut rng = StdRng::seed_from_u64(1);
    let train = PlatformDataset::generate(
        &model,
        &embedder,
        &TaskGenerator::default(),
        160,
        &NoiseConfig::default(),
        &mut rng,
    );
    let test = PlatformDataset::generate(
        &model,
        &embedder,
        &TaskGenerator::default(),
        120,
        &NoiseConfig::default(),
        &mut rng,
    );
    let cfg = MfcpTrainConfig {
        warm_start: TsmTrainConfig {
            hidden: vec![8],
            epochs: 120,
            ..Default::default()
        },
        rounds: 30,
        round_size: 40,
        lr: 5e-3,
        gamma: 0.80,
        mode: GradientMode::Analytic,
        ..Default::default()
    };
    let (mfcp, report) = train_mfcp(&train, &cfg, 3);
    assert!(report.loss_history.iter().all(|l| l.is_finite()));

    let opts = EvalOptions {
        round_size: 40,
        rounds: 6,
        gamma: 0.80,
        ..Default::default()
    };
    let scores = evaluate_method(&mfcp, &test, &opts, &mut StdRng::seed_from_u64(5));
    let tam_scores = evaluate_method(
        &TamPredictor::fit(&train),
        &test,
        &opts,
        &mut StdRng::seed_from_u64(5),
    );
    assert!(
        scores.regret.mean() < tam_scores.regret.mean(),
        "MFCP {} vs TAM {}",
        scores.regret.mean(),
        tam_scores.regret.mean()
    );
    assert!(scores.utilization.mean() > tam_scores.utilization.mean());

    // TSM at this scale also runs end to end.
    let tsm = train_tsm(&train, &cfg.warm_start, 3);
    let tsm_scores = evaluate_method(&tsm, &test, &opts, &mut StdRng::seed_from_u64(5));
    assert!(tsm_scores.regret.mean().is_finite());
}

#[test]
#[ignore = "stress test: large relaxed solves"]
fn relaxed_solver_scales_to_hundreds_of_tasks() {
    let mut rng = StdRng::seed_from_u64(2);
    let (m, n) = (10usize, 300usize);
    let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.2..3.0));
    let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.7..1.0));
    let problem = MatchingProblem::new(t, a, 0.78);
    let sol = solve_relaxed(
        &problem,
        &RelaxationParams::default(),
        &SolverOptions::default(),
    );
    assert!(sol.objective.is_finite());
    let asg = solve_discrete(
        &problem,
        &RelaxationParams::default(),
        &SolverOptions::default(),
    );
    assert_eq!(asg.tasks(), n);
    assert!(asg.is_feasible(&problem));
    // Utilization of the pipeline matching should be high at this scale.
    assert!(
        asg.utilization(&problem) > 0.7,
        "{}",
        asg.utilization(&problem)
    );
}

#[test]
#[ignore = "stress test: branch-and-bound ceiling"]
fn exact_solver_handles_thirty_tasks() {
    let mut rng = StdRng::seed_from_u64(3);
    let t = Matrix::from_fn(3, 30, |_, _| rng.gen_range(0.2..3.0));
    let a = Matrix::from_fn(3, 30, |_, _| rng.gen_range(0.7..1.0));
    let problem = MatchingProblem::new(t, a, 0.78);
    let result = solve_exact(&problem, &ExactOptions::default());
    assert!(result.feasible);
    // Even if the node limit truncates, the incumbent must be sane.
    let naive = (0..30).map(|_| 0).collect::<Vec<_>>();
    let naive_span = mfcp::optim::Assignment::new(naive).makespan(&problem);
    assert!(result.assignment.makespan(&problem) < naive_span);
}
