//! Differential lock-down of the warm-start cache and batched solving.
//!
//! Three invariants, each property-tested over random convex instances
//! (`SpeedupCurve::None` plus the default entropy weight ρ > 0, so the
//! relaxed optimum is unique and cold/warm trajectories must meet):
//!
//! 1. A warm-started [`RobustSolver::solve_with_cache`] agrees with the
//!    cold [`RobustSolver::solve`] on the objective within `1e-8` and on
//!    the argmax-rounded assignment exactly.
//! 2. The same holds when the cached state is stale or poisoned (NaN
//!    duals, wrong-shape assignment): the ladder falls back to the cold
//!    path — marked [`CacheOutcome::Stale`], never a panic or a wrong
//!    answer.
//! 3. Batched [`solve_batch`] fan-out is bit-for-bit identical to the
//!    sequential path, including the per-solve diagnostics ordering.
//!
//! Under `--features strict-determinism` the batched side runs
//! single-threaded, re-checking the same invariants with the thread pool
//! taken out of the picture (CI runs both configurations).

use mfcp::optim::cache::{fingerprint, CacheOutcome, WarmStartCache};
use mfcp::optim::recovery::RobustSolver;
use mfcp::optim::rounding::round_argmax;
use mfcp::optim::solver::SolverOptions;
use mfcp::optim::{MatchingProblem, RelaxationParams};
use mfcp::parallel::{solve_batch, ParallelConfig};
use mfcp_linalg::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random convex instance: no speedup curves, data bounded away from the
/// degenerate corners, and a slack reliability threshold. The ranges are
/// chosen so the smooth-max curvature (≈ β·t²) stays inside the stable
/// step-size regime for the solver below — the point of this suite is
/// trajectory equivalence at a certified optimum, not worst-case
/// conditioning (the recovery ladder owns that).
fn convex_problem(seed: u64, m: usize, n: usize) -> MatchingProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.7..1.8));
    let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.75..1.0));
    MatchingProblem::new(t, a, 0.6)
}

/// Relaxation with a strong entropy modulus: the strong-convexity
/// constant scales with ρ, and at 0.05 every generated instance reaches
/// the 1e-12 step tolerance in well under the iteration budget (probed
/// at ~4.3k iterations worst-case over 2000 instances).
fn test_params() -> RelaxationParams {
    RelaxationParams {
        rho: 0.05,
        ..Default::default()
    }
}

/// The same instance after a small data drift (structure — and therefore
/// the cache fingerprint — unchanged): the situation a warm start is for.
fn drifted(problem: &MatchingProblem, seed: u64) -> MatchingProblem {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD21F);
    let (m, n) = problem.times.shape();
    let t = Matrix::from_fn(m, n, |i, j| {
        problem.times[(i, j)] * (1.0 + 0.02 * rng.gen_range(-1.0..1.0))
    });
    MatchingProblem::new(t, problem.reliability.clone(), problem.gamma)
}

/// A solver tight enough that cold and warm runs both land within ~1e-10
/// of the unique optimum; mirror descent is monotone at lr 0.1 on these
/// instances (the default 0.8 can limit-cycle above the tolerance).
fn tight_solver(params: RelaxationParams) -> RobustSolver {
    let mut solver = RobustSolver::new(params);
    solver.solver_opts = SolverOptions {
        max_iters: 20_000,
        tol: 1e-12,
        lr: 0.1,
        ..Default::default()
    };
    // Disable stall aborts: a multiplicatively collapsing coordinate
    // (x shrinking geometrically toward its simplex face) moves more
    // than the stall step floor per iteration while barely changing the
    // objective, which the oscillation heuristic misreads as a stall at
    // this tolerance. The ladder's stall/recovery semantics are locked
    // down by the `mfcp-optim` recovery tests; this suite compares pure
    // cold and warm trajectories.
    solver.policy.stall_checks = usize::MAX;
    solver
}

/// Thread fan-out for the batched differential checks; pinned to one
/// thread under `strict-determinism` so CI exercises both shapes.
fn batch_parallel() -> ParallelConfig {
    if cfg!(feature = "strict-determinism") {
        ParallelConfig::sequential()
    } else {
        ParallelConfig::with_threads(4)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Invariant 1: warm-started solves agree with cold solves on the
    /// objective within 1e-8 and on the rounded assignment exactly —
    /// both on a cache miss (first solve) and on a genuine warm hit
    /// (re-solve after drift).
    #[test]
    fn prop_warm_agrees_with_cold(seed in 0u64..1_000_000, m in 2usize..4, n in 2usize..6) {
        let p0 = convex_problem(seed, m, n);
        let p1 = drifted(&p0, seed);
        let solver = tight_solver(test_params());

        let cold0 = solver.solve(&p0).expect("cold solve");
        let cold1 = solver.solve(&p1).expect("cold solve");

        let mut cache = WarmStartCache::new();
        let warm0 = solver.solve_with_cache(&p0, &mut cache).expect("miss solve");
        let warm1 = solver.solve_with_cache(&p1, &mut cache).expect("warm solve");

        prop_assert!(matches!(warm0.diagnostics.cache, Some(CacheOutcome::Miss)));
        prop_assert!(
            matches!(warm1.diagnostics.cache, Some(CacheOutcome::Hit)),
            "drifted re-solve must hit the cache, got {:?}",
            warm1.diagnostics.cache
        );
        prop_assert!(warm1.diagnostics.attempts[0].warm_start);

        for (cold, warm) in [(&cold0, &warm0), (&cold1, &warm1)] {
            prop_assert!(
                (cold.objective - warm.objective).abs() <= 1e-8,
                "objective drift {} vs {}",
                cold.objective,
                warm.objective
            );
            prop_assert_eq!(
                round_argmax(&cold.x).cluster_of,
                round_argmax(&warm.x).cluster_of
            );
        }
    }

    /// Invariant 2: a poisoned cache entry (NaN duals, then a wrong-shape
    /// assignment matrix) is evicted as stale and the solve falls back to
    /// the cold path — same answer, stale accounted, no panic.
    #[test]
    fn prop_poisoned_cache_falls_back_to_cold(seed in 0u64..1_000_000, m in 2usize..4, n in 2usize..6) {
        let p0 = convex_problem(seed, m, n);
        let solver = tight_solver(test_params());
        let cold = solver.solve(&p0).expect("cold solve");
        let key = fingerprint(&p0, &solver.params);

        let mut cache = WarmStartCache::new();
        let _ = solver.solve_with_cache(&p0, &mut cache).expect("seed the cache");

        for poison in 0..2u8 {
            let entry = cache.entry_mut(key).expect("entry just stored");
            match poison {
                0 => entry.duals = vec![f64::NAN; n],
                _ => entry.x = Matrix::filled(m + 1, n, 1.0 / (m + 1) as f64),
            }
            let stale_before = cache.stats().stale;
            let sol = solver.solve_with_cache(&p0, &mut cache).expect("poisoned solve");
            prop_assert!(
                matches!(sol.diagnostics.cache, Some(CacheOutcome::Stale)),
                "poison {poison}: expected stale, got {:?}",
                sol.diagnostics.cache
            );
            prop_assert!(cache.stats().stale > stale_before);
            prop_assert!(!sol.diagnostics.attempts[0].warm_start);
            prop_assert!((cold.objective - sol.objective).abs() <= 1e-8);
            prop_assert_eq!(
                round_argmax(&cold.x).cluster_of,
                round_argmax(&sol.x).cluster_of
            );
            // The eviction leaves a miss; the solve above re-stored a
            // fresh entry for the next poison round.
            prop_assert!(cache.entry_mut(key).is_some());
        }
    }

    /// Invariant 3: `solve_batch` returns results in input order and
    /// bit-for-bit identical to the sequential path — objectives,
    /// assignments, and the diagnostics path strings.
    #[test]
    fn prop_batched_matches_sequential_bitwise(seed in 0u64..1_000_000, count in 1usize..7) {
        let problems: Vec<MatchingProblem> = (0..count)
            .map(|k| convex_problem(seed.wrapping_add(k as u64), 3, 4))
            .collect();
        // Bit-for-bit comparison needs identical execution, not tight
        // convergence — a short budget keeps 256 cases cheap.
        let mut solver = RobustSolver::new(RelaxationParams::default());
        solver.solver_opts = SolverOptions {
            max_iters: 150,
            lr: 0.3,
            ..Default::default()
        };
        let run = |parallel: &ParallelConfig| -> Vec<(u64, Vec<usize>, String)> {
            solve_batch(parallel, &problems, |_, p| {
                let sol = solver.solve(p).expect("convex instance solves");
                (
                    sol.objective.to_bits(),
                    round_argmax(&sol.x).cluster_of,
                    sol.diagnostics.path(),
                )
            })
            .into_iter()
            .map(|slot| slot.expect("no slot panics here"))
            .collect()
        };
        let seq = run(&ParallelConfig::sequential());
        let par = run(&batch_parallel());
        prop_assert_eq!(seq, par);
    }
}
