//! End-to-end pipeline tests spanning every crate: platform generation →
//! predictor training → differentiable matching → evaluation.

use mfcp::core::eval::{evaluate_method, EvalOptions};
use mfcp::core::methods::{PerformancePredictor, TamPredictor};
use mfcp::core::train::{
    train_mfcp, train_tsm, train_ucb, GradientMode, MfcpTrainConfig, TsmTrainConfig,
};
use mfcp::optim::SpeedupCurve;
use mfcp::platform::dataset::{NoiseConfig, PlatformDataset};
use mfcp::platform::embedding::FeatureEmbedder;
use mfcp::platform::settings::{ClusterPool, Setting};
use mfcp::platform::task::TaskGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn datasets(setting: Setting, seed: u64) -> (PlatformDataset, PlatformDataset) {
    let model = ClusterPool::standard().setting(setting);
    let embedder = FeatureEmbedder::bottlenecked_platform();
    let generator = TaskGenerator::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let noise = NoiseConfig {
        time_rel_std: 0.10,
        reliability_trials: 15,
    };
    let train = PlatformDataset::generate(&model, &embedder, &generator, 60, &noise, &mut rng);
    let test = PlatformDataset::generate(&model, &embedder, &generator, 30, &noise, &mut rng);
    (train, test)
}

fn quick_supervised() -> TsmTrainConfig {
    TsmTrainConfig {
        hidden: vec![8],
        epochs: 80,
        lr: 0.01,
        batch_size: 32,
        ..Default::default()
    }
}

#[test]
fn all_methods_produce_feasible_scored_matchings() {
    let (train, test) = datasets(Setting::A, 1);
    let opts = EvalOptions {
        round_size: 5,
        rounds: 5,
        gamma: 0.80,
        ..Default::default()
    };
    let tam = TamPredictor::fit(&train);
    let tsm = train_tsm(&train, &quick_supervised(), 2);
    let ucb = train_ucb(&train, &quick_supervised(), 1.0, 2);
    let methods: Vec<&dyn PerformancePredictor> = vec![&tam, &tsm, &ucb];
    for method in methods {
        let scores = evaluate_method(method, &test, &opts, &mut StdRng::seed_from_u64(3));
        assert_eq!(scores.regret.count(), 5, "{}", method.name());
        assert!(scores.regret.mean() >= 0.0);
        assert!((0.0..=1.0).contains(&scores.reliability.mean()));
        assert!((0.0..=1.0).contains(&scores.utilization.mean()));
        assert!(scores.makespan.mean() >= scores.optimal_makespan.mean() - 1e-9);
    }
}

#[test]
fn mfcp_ad_end_to_end_not_worse_than_untrained_baseline() {
    let (train, test) = datasets(Setting::A, 5);
    let cfg = MfcpTrainConfig {
        warm_start: quick_supervised(),
        rounds: 20,
        round_size: 5,
        lr: 5e-3,
        gamma: 0.80,
        mode: GradientMode::Analytic,
        ..Default::default()
    };
    let (mfcp, report) = train_mfcp(&train, &cfg, 7);
    assert_eq!(report.loss_history.len(), 20);
    let opts = EvalOptions {
        round_size: 5,
        rounds: 6,
        gamma: 0.80,
        ..Default::default()
    };
    let scores = evaluate_method(&mfcp, &test, &opts, &mut StdRng::seed_from_u64(9));
    // The decision phase snapshots on validation regret, so MFCP must stay
    // within noise of its own supervised warm start (identical seed and
    // config) — it can improve on it but never collapse.
    let warm = train_tsm(&train, &quick_supervised(), 7);
    let warm_scores = evaluate_method(&warm, &test, &opts, &mut StdRng::seed_from_u64(9));
    assert!(
        scores.regret.mean() <= 2.0 * warm_scores.regret.mean() + 0.5,
        "MFCP {} vs warm start {}",
        scores.regret.mean(),
        warm_scores.regret.mean()
    );
}

#[test]
fn mfcp_fg_end_to_end_parallel_setting() {
    let (train, test) = datasets(Setting::A, 11);
    let cfg = MfcpTrainConfig {
        warm_start: quick_supervised(),
        rounds: 8,
        round_size: 6,
        lr: 5e-3,
        gamma: 0.80,
        speedup: vec![SpeedupCurve::paper_parallel(); 3],
        mode: GradientMode::ForwardGradient(Default::default()),
        validate_every: 4,
        ..Default::default()
    };
    let (mfcp, report) = train_mfcp(&train, &cfg, 13);
    assert_eq!(mfcp.variant, "MFCP-FG");
    assert!(report.loss_history.iter().all(|l| l.is_finite()));
    let opts = EvalOptions {
        round_size: 6,
        rounds: 4,
        gamma: 0.80,
        speedup: vec![SpeedupCurve::paper_parallel(); 3],
        ..Default::default()
    };
    let scores = evaluate_method(&mfcp, &test, &opts, &mut StdRng::seed_from_u64(17));
    assert!(scores.regret.mean().is_finite());
    assert!(scores.utilization.mean() > 0.0);
}

#[test]
fn evaluation_is_reproducible_across_settings() {
    for setting in Setting::ALL {
        let (train, test) = datasets(setting, 23);
        let tam = TamPredictor::fit(&train);
        let opts = EvalOptions {
            round_size: 5,
            rounds: 4,
            gamma: 0.80,
            ..Default::default()
        };
        let a = evaluate_method(&tam, &test, &opts, &mut StdRng::seed_from_u64(1));
        let b = evaluate_method(&tam, &test, &opts, &mut StdRng::seed_from_u64(1));
        assert_eq!(a.regret.mean(), b.regret.mean(), "{setting:?}");
    }
}
