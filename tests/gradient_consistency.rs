//! Cross-engine gradient consistency: the analytic (KKT) and zeroth-order
//! (forward) gradient paths must agree on the matching layer, across
//! random instances — the property that makes MFCP-AD and MFCP-FG
//! interchangeable in the convex case (paper §4.3: "MFCP with forward
//! gradient can achieve performance comparable to analytical
//! differentiation").

use mfcp::optim::kkt::implicit_gradients;
use mfcp::optim::solver::{solve_relaxed, SolverOptions};
use mfcp::optim::zeroth::{estimate_gradient, ZerothOrderOptions};
use mfcp::optim::{MatchingProblem, RelaxationParams};
use mfcp_linalg::{vector, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tight() -> SolverOptions {
    SolverOptions {
        max_iters: 8000,
        tol: 1e-13,
        ..Default::default()
    }
}

fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let na = vector::norm2(a);
    let nb = vector::norm2(b);
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    vector::dot(a, b) / (na * nb)
}

#[test]
fn ad_and_fg_gradients_align() {
    let mut agree = 0;
    let trials = 4;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed);
        let (m, n) = (3, 4);
        let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..2.5));
        let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.75..1.0));
        let problem = MatchingProblem::new(t, a, 0.78);
        let params = RelaxationParams::default();
        let sol = solve_relaxed(&problem, &params, &tight());
        let c = Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));

        let kkt = implicit_gradients(&problem, &params, &sol.x, &c).unwrap();
        let ad_row: Vec<f64> = kkt.dl_dt.row(0).to_vec();

        let theta: Vec<f64> = problem.times.row(0).to_vec();
        let solve = |th: &[f64]| {
            let p = problem.with_time_row(0, th);
            solve_relaxed(&p, &params, &tight()).x
        };
        let zo = ZerothOrderOptions {
            delta: 0.02,
            samples: 256,
            ..Default::default()
        };
        let fg = estimate_gradient(&theta, &sol.x, &c, solve, &zo, &mut rng);

        let cos = cosine(&ad_row, &fg);
        if cos > 0.85 {
            agree += 1;
        } else {
            eprintln!("seed {seed}: cosine {cos}, ad {ad_row:?}, fg {fg:?}");
        }
    }
    assert!(
        agree >= trials - 1,
        "AD and FG disagreed on {} of {trials} instances",
        trials - agree
    );
}

#[test]
fn reliability_gradients_flow_through_barrier_both_ways() {
    let mut rng = StdRng::seed_from_u64(9);
    let (m, n) = (3, 4);
    let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..2.5));
    let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.78..0.92));
    let problem = MatchingProblem::new(t, a, 0.80);
    let params = RelaxationParams {
        lambda: 0.1,
        ..Default::default()
    };
    let sol = solve_relaxed(&problem, &params, &tight());
    let c = Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));

    let kkt = implicit_gradients(&problem, &params, &sol.x, &c).unwrap();
    assert!(
        kkt.dl_da.max_abs() > 1e-9,
        "analytic reliability gradient vanished"
    );

    let theta: Vec<f64> = problem.reliability.row(0).to_vec();
    let solve = |th: &[f64]| {
        let p = problem.with_reliability_row(0, th);
        solve_relaxed(&p, &params, &tight()).x
    };
    let zo = ZerothOrderOptions {
        delta: 0.02,
        samples: 256,
        ..Default::default()
    };
    let fg = estimate_gradient(&theta, &sol.x, &c, solve, &zo, &mut rng);
    assert!(
        vector::norm_inf(&fg) > 1e-9,
        "zeroth-order reliability gradient vanished"
    );
}

#[test]
fn fg_error_shrinks_with_samples_on_matching_layer() {
    // Theorem 3's variance term on the real matching layer (not a toy
    // linear map): quadrupling S should cut the error vs AD noticeably.
    let mut rng = StdRng::seed_from_u64(21);
    let (m, n) = (3, 4);
    let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..2.5));
    let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.75..1.0));
    let problem = MatchingProblem::new(t, a, 0.78);
    let params = RelaxationParams::default();
    let sol = solve_relaxed(&problem, &params, &tight());
    let c = Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));
    let kkt = implicit_gradients(&problem, &params, &sol.x, &c).unwrap();
    let ad_row: Vec<f64> = kkt.dl_dt.row(0).to_vec();

    let theta: Vec<f64> = problem.times.row(0).to_vec();
    let solve = |th: &[f64]| {
        let p = problem.with_time_row(0, th);
        solve_relaxed(&p, &params, &tight()).x
    };
    let err_with = |samples: usize| {
        // Average error over a few independent estimates.
        let mut total = 0.0;
        for rep in 0..3 {
            let mut rng = StdRng::seed_from_u64(100 + rep);
            let zo = ZerothOrderOptions {
                delta: 0.02,
                samples,
                ..Default::default()
            };
            let fg = estimate_gradient(&theta, &sol.x, &c, solve, &zo, &mut rng);
            let diff: Vec<f64> = fg.iter().zip(&ad_row).map(|(f, a)| f - a).collect();
            total += vector::norm2(&diff);
        }
        total / 3.0
    };
    let coarse = err_with(8);
    let fine = err_with(128);
    assert!(
        fine < coarse,
        "error should shrink with S: S=8 → {coarse}, S=128 → {fine}"
    );
}
