//! Workspace-wide property-based tests: invariants that must hold for
//! arbitrary (generated) inputs, spanning the substrate crates.

use mfcp::optim::objective::{self, RelaxationParams};
use mfcp::optim::solver::{is_column_stochastic, solve_relaxed, uniform_init, SolverOptions};
use mfcp::optim::{Assignment, MatchingProblem};
use mfcp::platform::cluster::PerfModel;
use mfcp::platform::embedding::FeatureEmbedder;
use mfcp::platform::settings::ClusterPool;
use mfcp::platform::task::{TaskGenerator, TaskSpec};
use mfcp_linalg::{lu::Lu, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn problem_from_seed(seed: u64, m: usize, n: usize) -> MatchingProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.2..4.0));
    let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.6..1.0));
    MatchingProblem::new(t, a, 0.7)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// With a step size inside the descent-lemma regime (η ≤ 1/L; the
    /// smoothed objective's curvature here is ≲ β·t² ≈ 10²), the relaxed
    /// solver's final objective never exceeds the uniform start's.
    /// (Fixed-step mirror descent is not monotone for aggressive steps.)
    #[test]
    fn prop_solver_improves_on_uniform(seed in 0u64..10_000, m in 2usize..5, n in 1usize..8) {
        let problem = problem_from_seed(seed, m, n);
        let params = RelaxationParams::default();
        let start = objective::value(&problem, &params, &uniform_init(m, n));
        let sol = solve_relaxed(&problem, &params, &SolverOptions {
            max_iters: 1500, lr: 0.01, ..Default::default()
        });
        prop_assert!(sol.objective <= start + 1e-6,
            "final {} vs start {}", sol.objective, start);
        prop_assert!(is_column_stochastic(&sol.x, 1e-6));
    }

    /// Any 0/1 assignment matrix gives a smoothed cost within log(M)/β of
    /// its true makespan (Theorem 1 instantiated on vertices).
    #[test]
    fn prop_smooth_cost_sandwich_on_vertices(
        seed in 0u64..10_000, n in 1usize..8, beta in 1.0f64..50.0
    ) {
        let problem = problem_from_seed(seed, 3, n);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5);
        let asg = Assignment::new((0..n).map(|_| rng.gen_range(0..3)).collect());
        let x = asg.to_matrix(3);
        let params = RelaxationParams { beta, ..Default::default() };
        let smooth = objective::smooth_cost(&problem, &params, &x);
        let truth = asg.makespan(&problem);
        prop_assert!(smooth >= truth - 1e-9);
        prop_assert!(smooth <= truth + (3.0f64).ln() / beta + 1e-9);
    }

    /// LU solves of diagonally dominant systems are accurate.
    #[test]
    fn prop_lu_solves_diag_dominant(seed in 0u64..10_000, n in 1usize..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        for i in 0..n {
            let row_sum: f64 = a.row(i).iter().map(|v| v.abs()).sum();
            a[(i, i)] = row_sum + 1.0;
        }
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x = Lu::factor(&a).unwrap().solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (axi, bi) in ax.iter().zip(&b) {
            prop_assert!((axi - bi).abs() < 1e-9);
        }
    }

    /// The ground-truth performance model is always physical: positive
    /// finite times, probabilities in range, and monotone in compute.
    #[test]
    fn prop_perf_model_is_physical(seed in 0u64..10_000) {
        let pool = ClusterPool::standard();
        let model = PerfModel::new(pool.clusters.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let task = TaskGenerator::default().sample(&mut rng);
        for c in &model.clusters {
            let t = c.execution_time(&task);
            let a = c.reliability(&task);
            prop_assert!(t > 0.0 && t.is_finite());
            prop_assert!((0.5..=0.999).contains(&a));
        }
        // Doubling depth (more compute, more memory) never speeds a task up.
        let deeper = TaskSpec { depth: task.depth * 2, ..task.clone() };
        for c in &model.clusters {
            prop_assert!(c.execution_time(&deeper) >= c.execution_time(&task));
        }
    }

    /// Embeddings are finite, bounded, and deterministic for any task.
    #[test]
    fn prop_embedding_bounded(seed in 0u64..10_000) {
        let embedder = FeatureEmbedder::bottlenecked_platform();
        let mut rng = StdRng::seed_from_u64(seed);
        let task = TaskGenerator::default().sample(&mut rng);
        let z1 = embedder.embed(&task);
        let z2 = embedder.embed(&task);
        prop_assert_eq!(&z1, &z2);
        prop_assert_eq!(z1.len(), embedder.dim());
        for v in z1 {
            prop_assert!(v.is_finite() && (-1.5..=1.5).contains(&v));
        }
    }

    /// Assignment metrics are mutually consistent: utilization equals the
    /// busy-time ratio implied by cluster_times and makespan.
    #[test]
    fn prop_assignment_metric_consistency(seed in 0u64..10_000, n in 1usize..10) {
        let problem = problem_from_seed(seed, 3, n);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        let asg = Assignment::new((0..n).map(|_| rng.gen_range(0..3)).collect());
        let times = asg.cluster_times(&problem);
        let span = asg.makespan(&problem);
        prop_assert!((span - times.iter().cloned().fold(0.0, f64::max)).abs() < 1e-12);
        if span > 0.0 {
            let util = times.iter().sum::<f64>() / (3.0 * span);
            prop_assert!((asg.utilization(&problem) - util).abs() < 1e-12);
            prop_assert!(util <= 1.0 + 1e-12);
        }
    }
}
