//! Theorem 2 (ε-feasibility): the interior-point relaxation keeps its
//! iterates (and the rounded deployment matchings) within a vanishing
//! distance of the reliability constraint.

use mfcp::optim::objective::{reliability_slack, RelaxationParams};
use mfcp::optim::rounding::solve_discrete;
use mfcp::optim::solver::{solve_relaxed, SolverOptions};
use mfcp::optim::MatchingProblem;
use mfcp_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_problem(seed: u64, m: usize, n: usize, gamma: f64) -> MatchingProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.5..3.0));
    let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.7..1.0));
    MatchingProblem::new(t, a, gamma)
}

#[test]
fn relaxed_solutions_are_eps_feasible() {
    // With the log barrier, the relaxed optimum keeps strictly positive
    // slack on instances where the uniform start is feasible.
    for seed in 0..10 {
        let problem = random_problem(seed, 3, 6, 0.78);
        let params = RelaxationParams::default();
        let sol = solve_relaxed(&problem, &params, &SolverOptions::default());
        let slack = reliability_slack(&problem, &sol.x);
        assert!(
            slack > -1e-3,
            "seed {seed}: barrier failed to keep feasibility, slack {slack}"
        );
    }
}

#[test]
fn slack_grows_as_lambda_grows() {
    // A heavier barrier weight pushes the solution deeper into the
    // feasible region (more conservative matchings).
    let problem = random_problem(42, 3, 8, 0.80);
    let opts = SolverOptions::default();
    let slack_at = |lambda: f64| {
        let params = RelaxationParams {
            lambda,
            ..Default::default()
        };
        let sol = solve_relaxed(&problem, &params, &opts);
        reliability_slack(&problem, &sol.x)
    };
    let light = slack_at(0.01);
    let heavy = slack_at(0.5);
    assert!(
        heavy >= light - 1e-9,
        "λ=0.5 slack {heavy} should be ≥ λ=0.01 slack {light}"
    );
}

#[test]
fn deployment_pipeline_repairs_to_feasibility() {
    // Whenever a feasible discrete matching exists, the relax → round →
    // repair pipeline must find one.
    let mut feasible_instances = 0;
    for seed in 100..115 {
        let problem = random_problem(seed, 3, 6, 0.82);
        if mfcp::optim::exact::solve_brute_force(&problem).is_none() {
            continue; // no feasible matching at all
        }
        feasible_instances += 1;
        let asg = solve_discrete(
            &problem,
            &RelaxationParams::default(),
            &SolverOptions::default(),
        );
        assert!(
            asg.is_feasible(&problem),
            "seed {seed}: pipeline produced infeasible matching"
        );
    }
    assert!(feasible_instances >= 5, "test instances too restrictive");
}

#[test]
fn tight_threshold_still_handled() {
    // γ barely below the best achievable mean reliability: the barrier
    // must not blow up and the pipeline must stay close to feasible.
    let mut rng = StdRng::seed_from_u64(7);
    let t = Matrix::from_fn(2, 5, |_, _| rng.gen_range(0.5..2.0));
    let a = Matrix::from_fn(2, 5, |_, _| rng.gen_range(0.9..0.95));
    // Max achievable mean reliability:
    let best: f64 = (0..5)
        .map(|j| (0..2).map(|i| a[(i, j)]).fold(0.0, f64::max))
        .sum::<f64>()
        / 5.0;
    let problem = MatchingProblem::new(t, a, best - 0.005);
    let sol = solve_relaxed(
        &problem,
        &RelaxationParams::default(),
        &SolverOptions::default(),
    );
    assert!(sol.objective.is_finite());
    let asg = solve_discrete(
        &problem,
        &RelaxationParams::default(),
        &SolverOptions::default(),
    );
    assert!(asg.mean_reliability(&problem) >= problem.gamma - 0.02);
}
