//! Offline stand-in for the subset of `crossbeam` used by the MFCP
//! workspace: an unbounded MPMC channel and scoped threads.

pub mod channel;
pub mod thread;
