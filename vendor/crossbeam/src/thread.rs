//! Scoped threads with the `crossbeam::thread` calling convention
//! (`scope` returns a `Result`, `spawn` closures take a scope argument),
//! implemented on top of `std::thread::scope`.

use std::any::Any;

/// Handle to a scoped thread; joining yields the closure's result or the
/// payload of its panic.
pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.0.join()
    }
}

/// The scope passed to [`scope`]'s closure. Spawn closures receive a
/// placeholder `()` argument where crossbeam passes a nested scope; the
/// workspace's call sites all ignore it (`|_| …`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle(self.inner.spawn(move || f(())))
    }
}

/// Runs `f` with a scope that may borrow from the caller's stack; all
/// spawned threads are joined before returning. If a spawned thread
/// panicked and its handle was not joined, the panic propagates (as with
/// `std::thread::scope`), so the `Ok` path means every thread finished.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn borrows_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    #[should_panic]
    fn unjoined_panics_propagate() {
        let _ = scope(|s| {
            s.spawn(|_| panic!("worker failed"));
        });
    }
}
