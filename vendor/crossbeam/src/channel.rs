//! Unbounded multi-producer multi-consumer channel with blocking `recv`,
//! built on `std::sync::{Mutex, Condvar}`.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent value is handed back.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a channel with no receivers")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty channel with no senders")
    }
}

impl std::error::Error for RecvError {}

/// Producer half; clonable.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// Consumer half; clonable (multi-consumer, each message delivered once).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.inner.receivers.load(Ordering::SeqCst) == 0 {
            return Err(SendError(value));
        }
        self.inner
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(value);
        self.inner.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake every blocked receiver so it can
            // observe disconnection.
            self.inner.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is dropped and the
    /// queue is drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self
            .inner
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.inner.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            queue = self
                .inner
                .ready
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive; `None` when the queue is currently empty.
    pub fn try_recv(&self) -> Option<T> {
        self.inner
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.receivers.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_delivers_each_message_once() {
        let (tx, rx) = unbounded::<usize>();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<usize> = workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errs_after_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
