//! Offline stand-in for the subset of the `rand` crate API used by the
//! MFCP workspace: `RngCore`/`Rng`/`SeedableRng`, `rngs::StdRng`, and
//! uniform sampling over integer/float ranges.
//!
//! Determinism matches itself (same seed → same stream) but the streams
//! are **not** byte-compatible with upstream `rand`.

use std::ops::{Range, RangeInclusive};

pub mod rngs;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

/// A uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Random {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for usize {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`]. The output is a type
/// parameter (as in upstream `rand`) so that integer literals infer
/// from the call site, e.g. `rng.gen_range(0..3)` used as a slice index.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % width;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "gen_range: empty range");
                let width = (e as i128 - s as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % width;
                (s as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "gen_range: invalid f64 range"
        );
        let v = self.start + (self.end - self.start) * unit_f64(rng);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (s, e) = (*self.start(), *self.end());
        assert!(
            s <= e && s.is_finite() && e.is_finite(),
            "gen_range: invalid f64 range"
        );
        s + (e - s) * unit_f64(rng)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p must be in [0, 1], got {p}"
        );
        unit_f64(self) < p
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(0.5..3.0);
            assert!((0.5..3.0).contains(&x));
            let k = rng.gen_range(2..=8);
            assert!((2..=8).contains(&k));
            let j: usize = rng.gen_range(0..3);
            assert!(j < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn unit_interval_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
    }
}
