//! Concrete generators. `StdRng` here is a SplitMix64 generator — small,
//! fast, and statistically sound for simulation workloads, though not
//! cryptographic and not stream-compatible with upstream `rand`.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator (SplitMix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut first = [0u8; 8];
        first.copy_from_slice(&seed[..8]);
        Self::seed_from_u64(u64::from_le_bytes(first))
    }

    fn seed_from_u64(state: u64) -> Self {
        // Pre-mix so that small sequential seeds (0, 1, 2, …) start from
        // well-separated states.
        let mut rng = StdRng {
            state: state ^ 0x5DEE_CE66_D1CE_4E5B,
        };
        rng.next_u64();
        rng
    }
}
