//! Offline stand-in for the subset of `criterion` used by the MFCP
//! workspace. Benchmarks compile and run, executing each body a small
//! fixed number of iterations and printing a rough ns/iter figure — no
//! statistical analysis, warm-up, or reports.

use std::fmt;
use std::marker::PhantomData;
use std::time::Instant;

pub use std::hint::black_box;

/// Label for a benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark bodies.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64 / self.iters.max(1) as f64;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Builder-style sample-size override (retained for API
    /// compatibility; this stand-in always runs a fixed iteration count).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("bench", &id.to_string(), f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _parent: PhantomData<&'c mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, mut f: F) {
    let mut bencher = Bencher {
        iters: 3,
        elapsed_ns: 0.0,
    };
    f(&mut bencher);
    println!(
        "{group}/{id}: ~{:.0} ns/iter (stub harness)",
        bencher.elapsed_ns
    );
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `fn main` running each group (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
