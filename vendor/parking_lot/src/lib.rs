//! Offline stand-in for the subset of `parking_lot` used by the MFCP
//! workspace: a `Mutex` whose `lock()` returns the guard directly
//! (poisoning is ignored, matching parking_lot semantics).

use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex with parking_lot's panic-transparent locking API, backed by
/// `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Unlike
    /// `std::sync::Mutex`, a panic while the lock was held does not
    /// poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_survives_panics() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
