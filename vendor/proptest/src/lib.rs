//! Offline stand-in for the subset of `proptest` used by the MFCP
//! workspace: the `proptest!` macro, numeric-range and `collection::vec`
//! strategies, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Inputs are drawn from a deterministic per-test RNG (seeded from the
//! test's name), so failures are reproducible; there is no shrinking.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a property body (no shrinking here, so it
/// simply delegates to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that samples its arguments `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}
