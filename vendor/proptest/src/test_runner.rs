//! Test configuration and the deterministic RNG backing input sampling.

/// Subset of proptest's run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// SplitMix64 generator seeded from the test's name, so every run of a
/// given property sees the same input sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
