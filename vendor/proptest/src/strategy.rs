//! Input strategies: numeric ranges sample uniformly; see
//! [`crate::collection`] for container strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A source of sampled test inputs.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % width;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty strategy range");
                let width = (e as i128 - s as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % width;
                (s as i128 + off as i128) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (s, e) = (*self.start(), *self.end());
        assert!(s <= e, "empty strategy range");
        s + (e - s) * rng.unit_f64()
    }
}
