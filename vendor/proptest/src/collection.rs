//! Container strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec`s with element strategy `S` and a length drawn from
/// a half-open range.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// `proptest::collection::vec(element, len_range)`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.len.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
