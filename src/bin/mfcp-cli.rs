//! `mfcp-cli` — operate the exchange platform from the command line:
//! generate measurement traces, train predictors, evaluate them, and
//! match task rounds with a trained model.
//!
//! ```text
//! mfcp-cli generate --setting A --tasks 100 --seed 1 --out trace.csv
//! mfcp-cli train    --trace trace.csv --method mfcp-ad --out model.txt
//! mfcp-cli evaluate --trace test.csv --model model.txt --rounds 20
//! mfcp-cli match    --trace tasks.csv --model model.txt
//! ```

use mfcp::core::eval::{evaluate_method, EvalOptions};
use mfcp::core::methods::{MfcpPredictor, PerformancePredictor, TsmPredictor};
use mfcp::core::train::{train_mfcp, train_tsm, GradientMode, MfcpTrainConfig, TsmTrainConfig};
use mfcp::optim::rounding::solve_discrete;
use mfcp::optim::{MatchingProblem, RelaxationParams, SolverOptions};
use mfcp::platform::dataset::{NoiseConfig, PlatformDataset};
use mfcp::platform::embedding::FeatureEmbedder;
use mfcp::platform::settings::{ClusterPool, Setting};
use mfcp::platform::task::TaskGenerator;
use mfcp::platform::trace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
mfcp-cli — computing resource exchange platform tooling

USAGE:
  mfcp-cli generate --out <trace.csv> [--setting A|B|C] [--tasks N] [--seed S]
                    [--time-noise F] [--rel-trials K]
  mfcp-cli train    --trace <trace.csv> --out <model.txt>
                    [--method tsm|mfcp-ad|mfcp-fg] [--rounds N] [--gamma G] [--seed S]
  mfcp-cli evaluate --trace <trace.csv> --model <model.txt>
                    [--rounds R] [--round-size N] [--gamma G] [--seed S]
  mfcp-cli match    --trace <trace.csv> --model <model.txt> [--gamma G]

Traces are the CSV format of mfcp-platform::trace; models are the text
documents of TsmPredictor/MfcpPredictor::to_document.";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {arg:?}"))?;
        let value = it
            .next()
            .ok_or_else(|| format!("--{key} requires a value"))?;
        flags.insert(key.to_string(), value.clone());
    }
    Ok(flags)
}

fn flag_or<'a>(flags: &'a HashMap<String, String>, key: &str, default: &'a str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or(default)
}

fn parse_num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad --{key} value {v:?}")),
    }
}

fn parse_setting(s: &str) -> Result<Setting, String> {
    match s {
        "A" | "a" => Ok(Setting::A),
        "B" | "b" => Ok(Setting::B),
        "C" | "c" => Ok(Setting::C),
        other => Err(format!("unknown setting {other:?} (A, B or C)")),
    }
}

/// A trained model of either flavor.
enum Model {
    Tsm(TsmPredictor),
    Mfcp(MfcpPredictor),
}

impl Model {
    fn load(path: &str) -> Result<Model, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        if text.starts_with("mfcp-dfl v1") {
            MfcpPredictor::from_document(&text)
                .map(Model::Mfcp)
                .map_err(|e| e.to_string())
        } else if text.starts_with("mfcp-tsm v1") {
            TsmPredictor::from_document(&text)
                .map(Model::Tsm)
                .map_err(|e| e.to_string())
        } else {
            Err(format!("{path}: unrecognized model header"))
        }
    }

    fn as_predictor(&self) -> &dyn PerformancePredictor {
        match self {
            Model::Tsm(m) => m,
            Model::Mfcp(m) => m,
        }
    }
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = flags.get("out").ok_or("generate requires --out")?;
    let setting = parse_setting(flag_or(flags, "setting", "A"))?;
    let tasks: usize = parse_num(flags, "tasks", 100)?;
    let seed: u64 = parse_num(flags, "seed", 1)?;
    let noise = NoiseConfig {
        time_rel_std: parse_num(flags, "time-noise", 0.10)?,
        reliability_trials: parse_num(flags, "rel-trials", 15)?,
    };
    let model = ClusterPool::standard().setting(setting);
    let embedder = FeatureEmbedder::bottlenecked_platform();
    let mut rng = StdRng::seed_from_u64(seed);
    let dataset = PlatformDataset::generate(
        &model,
        &embedder,
        &TaskGenerator::default(),
        tasks,
        &noise,
        &mut rng,
    );
    trace::save_trace(&dataset, out).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: {} tasks x {} clusters (setting {setting:?}, seed {seed})",
        dataset.len(),
        dataset.clusters()
    );
    Ok(())
}

fn load_dataset(flags: &HashMap<String, String>) -> Result<PlatformDataset, String> {
    let path = flags.get("trace").ok_or("missing --trace")?;
    trace::load_trace(path, &FeatureEmbedder::bottlenecked_platform()).map_err(|e| e.to_string())
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = flags.get("out").ok_or("train requires --out")?;
    let dataset = load_dataset(flags)?;
    let method = flag_or(flags, "method", "mfcp-ad");
    let seed: u64 = parse_num(flags, "seed", 1)?;
    let gamma: f64 = parse_num(flags, "gamma", 0.82)?;
    let rounds: usize = parse_num(flags, "rounds", 160)?;
    let supervised = TsmTrainConfig {
        hidden: vec![8],
        epochs: 200,
        ..Default::default()
    };
    let document = match method {
        "tsm" => {
            let model = train_tsm(&dataset, &supervised, seed);
            model.to_document()
        }
        "mfcp-ad" | "mfcp-fg" => {
            let mode = if method == "mfcp-ad" {
                GradientMode::Analytic
            } else {
                GradientMode::ForwardGradient(Default::default())
            };
            let cfg = MfcpTrainConfig {
                warm_start: supervised,
                rounds,
                gamma,
                lr: 5e-3,
                mode,
                ..Default::default()
            };
            let (model, report) = train_mfcp(&dataset, &cfg, seed);
            println!(
                "trained {method}: {} rounds, best snapshot at round {}",
                report.loss_history.len(),
                report.best_round
            );
            model.to_document()
        }
        other => return Err(format!("unknown method {other:?} (tsm, mfcp-ad, mfcp-fg)")),
    };
    std::fs::write(out, document).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_evaluate(flags: &HashMap<String, String>) -> Result<(), String> {
    let dataset = load_dataset(flags)?;
    let model = Model::load(flags.get("model").ok_or("evaluate requires --model")?)?;
    let opts = EvalOptions {
        rounds: parse_num(flags, "rounds", 20)?,
        round_size: parse_num(flags, "round-size", 5)?,
        gamma: parse_num(flags, "gamma", 0.82)?,
        ..Default::default()
    };
    let seed: u64 = parse_num(flags, "seed", 707)?;
    let scores = evaluate_method(
        model.as_predictor(),
        &dataset,
        &opts,
        &mut StdRng::seed_from_u64(seed),
    );
    println!("method:       {}", model.as_predictor().name());
    println!("rounds:       {} x {} tasks", opts.rounds, opts.round_size);
    println!("regret:       {}", scores.regret);
    println!("reliability:  {}", scores.reliability);
    println!("utilization:  {}", scores.utilization);
    println!(
        "makespan:     {} (optimal {})",
        scores.makespan, scores.optimal_makespan
    );
    Ok(())
}

fn cmd_match(flags: &HashMap<String, String>) -> Result<(), String> {
    let dataset = load_dataset(flags)?;
    let model = Model::load(flags.get("model").ok_or("match requires --model")?)?;
    let gamma: f64 = parse_num(flags, "gamma", 0.82)?;
    let (t_hat, a_hat) = model.as_predictor().predict(&dataset.features);
    let scale = t_hat.mean().max(1e-9);
    let problem = MatchingProblem::new(t_hat.scale(1.0 / scale), a_hat, gamma);
    let assignment = solve_discrete(
        &problem,
        &RelaxationParams::default(),
        &SolverOptions::default(),
    );
    println!(
        "matched {} tasks onto {} clusters:",
        dataset.len(),
        dataset.clusters()
    );
    for (j, (task, &cluster)) in dataset.tasks.iter().zip(&assignment.cluster_of).enumerate() {
        println!(
            "  task {j:>3} ({:?} depth {} width {} batch {}) -> cluster {cluster}",
            task.family, task.depth, task.width, task.batch_size
        );
    }
    let loads = assignment.loads(dataset.clusters());
    println!("cluster loads: {loads:?}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = parse_flags(rest).and_then(|flags| match command.as_str() {
        "generate" => cmd_generate(&flags),
        "train" => cmd_train(&flags),
        "evaluate" => cmd_evaluate(&flags),
        "match" => cmd_match(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}
