//! # MFCP — Joint Prediction and Matching for Computing Resource Exchange Platforms
//!
//! Façade crate re-exporting the whole MFCP workspace behind a single
//! dependency. See the individual crates for module-level documentation:
//!
//! * [`mfcp_platform`] — the computing-resource-exchange-platform simulator
//!   (tasks, clusters, ground-truth performance models, metrics).
//! * [`mfcp_core`] — the MFCP training framework and the baselines
//!   (TAM, TSM, UCB, MFCP-AD, MFCP-FG).
//! * [`mfcp_optim`] — the relaxed matching problem, Algorithm 1, implicit
//!   KKT differentiation and zeroth-order gradient estimation.
//! * [`mfcp_nn`] / [`mfcp_autodiff`] / [`mfcp_linalg`] / [`mfcp_parallel`] —
//!   the neural-network, autodiff, linear-algebra and parallelism substrates.
//! * [`mfcp_obs`] — observability: span timers, counters, histograms and
//!   profile snapshots across the solve-and-train pipeline.

#![forbid(unsafe_code)]

pub use mfcp_autodiff as autodiff;
pub use mfcp_core as core;
pub use mfcp_linalg as linalg;
pub use mfcp_nn as nn;
pub use mfcp_obs as obs;
pub use mfcp_optim as optim;
pub use mfcp_parallel as parallel;
pub use mfcp_platform as platform;

/// Convenience prelude importing the types most programs need.
pub mod prelude {
    pub use mfcp_core::prelude::*;
    pub use mfcp_linalg::Matrix;
    pub use mfcp_optim::{MatchingProblem, RelaxationParams, SolverOptions};
    pub use mfcp_platform::prelude::*;
}
